// Package core implements DASC — Distributed Approximate Spectral
// Clustering — the paper's primary contribution (§3). The pipeline is:
//
//  1. hash every point to an M-bit signature with span-weighted
//     random-projection LSH (internal/lsh),
//  2. group points by signature and merge buckets whose signatures are
//     near-duplicates (Eq. 6),
//  3. compute a Gaussian-kernel sub-similarity matrix per bucket
//     (internal/kernel) — the approximated Gram matrix,
//  4. run spectral clustering independently on every bucket
//     (internal/spectral) and assemble global labels.
//
// There is exactly one implementation of that dataflow — the canonical
// plan in pipeline.go — and four drivers that run it on interchangeable
// backends via the Runner interface: Cluster (in-process worker pool),
// ClusterIncremental (bounded-memory sequential waves), ClusterMapReduce
// (two MapReduce stages on any mapreduce.Executor, the paper's Hadoop
// formulation), and ClusterMapReduceShipped (the closure-free variant
// whose workers may live in other OS processes). Every driver has a
// Context-taking form; the plain forms wrap context.Background().
// EMRFlow additionally builds an emr job flow whose task costs follow
// §4.1's model, for the elasticity study of Table 3.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analytic"
	"repro/internal/embed"
	"repro/internal/kernel"
	"repro/internal/kmeans"
	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/spectral"
)

// Config controls a DASC run.
type Config struct {
	// K is the total number of clusters across the dataset; 0 derives
	// it from the paper's category law K = 17(log2 N - 9).
	K int
	// M is the signature width in bits; 0 uses the paper's
	// M = ceil(log2(N)/2) - 1.
	M int
	// P is the minimum number of identical signature bits required to
	// merge two buckets; 0 uses the paper's P = M-1 (Hamming radius 1).
	// Set P = -1 to disable merging entirely (ablation).
	P int
	// Sigma is the Gaussian kernel bandwidth; 0 selects the median
	// heuristic from a data sample.
	Sigma float64
	// Policy selects the LSH dimension-choice strategy.
	Policy lsh.DimensionPolicy
	// Bins is the LSH threshold histogram resolution (default 20).
	Bins int
	// Seed makes the run reproducible.
	Seed int64
	// Workers caps the parallel bucket-clustering goroutines
	// (default GOMAXPROCS).
	Workers int
	// Family optionally replaces the paper's span/threshold hash with
	// another LSH family (SimHash, MinHash, spectral hashing, or a
	// prebuilt lsh.Ensemble). When set, M is taken from the family and
	// Policy/Bins are ignored. With Tables > 1 the family must be an
	// lsh.Ensemble or lsh.Refittable (MinHash) so independent tables can
	// be derived. Distributed drivers ship hash parameters to worker
	// processes and therefore always use the paper's fitted hasher,
	// ignoring Family.
	Family lsh.Family
	// Tables is the number of independent LSH tables L (default 1, the
	// paper's single-signature front-end). With L > 1, buckets that
	// share a point in any table are merged, repairing clusters that one
	// table's unlucky cut fragmented.
	Tables int
	// ProbeRadius enables multi-probe bucket merging: every point also
	// probes the buckets of signatures within this many bit flips
	// (lowest-margin bits first) and merges with the buckets it hits.
	// 0 (the default) disables probing.
	ProbeRadius int
	// MaxMergedBucket caps the size a bucket may reach through
	// cross-table or probe merging — the cost half of the recall/cost
	// dial, bounding the Ni^2 solve work the ensemble can create.
	// 0 means unlimited.
	MaxMergedBucket int
	// SparseCutoff enables the thresholded-CSR solve engine for buckets
	// with at least this many points. 0 (the default) keeps every bucket
	// on the dense path, which reproduces pre-engine labels bit for bit.
	SparseCutoff int
	// Epsilon is the similarity threshold of the sparse Gram pass:
	// kernel entries below it are dropped before the eigensolve. Only
	// consulted when SparseCutoff > 0; must lie in [0, 1).
	Epsilon float64
	// EmbedDim enables the embed-and-conquer solve path: when > 0, the
	// plan fits a random Fourier feature map of this dimension (must be
	// even — the features come in cos/sin pairs) and buckets of at least
	// EmbedCutoff points skip the Gram + eigensolve entirely, running
	// k-means on embedded rows instead. The MapReduce shipped driver
	// embeds map-side and ships d′-dim records. 0 (the default) keeps
	// every bucket on the exact Gram path, byte-identical to prior
	// releases.
	EmbedDim int
	// EmbedCutoff is the bucket size at or above which the embedded
	// solve runs. Only consulted when EmbedDim > 0; 0 then defaults to
	// DefaultEmbedCutoff.
	EmbedCutoff int
	// SpillBytes bounds the MapReduce master's in-memory shuffle buffer
	// (mapreduce.Job.SpillBytes, Hadoop's io.sort.mb analogue): the
	// MapReduce drivers thread it into every job they run, so map
	// output beyond the budget spills to per-partition disk runs and
	// the shuffle merges from disk. 0 (the default) keeps the shuffle
	// fully in memory; labels are bit-identical at any setting.
	SpillBytes int64
	// Compression turns on the lossless compressed data plane for the
	// MapReduce drivers: jobs run with mapreduce.Job.Compress (deflated
	// spill runs and, on wire v3 TCP links, deflated frames), stage-2
	// bucket index lists and solver-stats records use compact varint
	// encodings, and the shipped embed path ships packed ('e') embedded
	// records. Labels are bit-identical with it on or off — only bytes
	// moved and CPU spent in the codec change. Off by default, which
	// keeps every byte stream identical to prior releases.
	Compression bool
	// FitSample is the number of evenly spaced rows the sharded driver
	// reads to fit its plan (LSH thresholds, kernel bandwidth) without
	// loading the full matrix; 0 uses DefaultFitSample. FitSample >= N
	// reads every row in order, which makes the fit — and therefore the
	// labels — identical to the in-memory drivers'. Only the sharded
	// driver consults it.
	FitSample int
}

// DefaultFitSample is the sharded driver's plan-fitting sample size: a
// few thousand rows pin LSH valley thresholds and the median bandwidth
// closely while keeping the fit working set independent of N.
const DefaultFitSample = 4096

// DefaultEmbedCutoff is the bucket size at which the embedded solve
// starts paying: below it the dense engine's Gram + eigensolve is
// cheaper than the transform + k-means at useful d′.
const DefaultEmbedCutoff = 256

// Solver labels for buckets that never reach the spectral engine; the
// engine's own choices are reported as the spectral.Solver* constants.
const (
	// SolverTrivial marks buckets short-circuited without an eigensolve
	// (single point, single cluster, or one cluster per point).
	SolverTrivial = "trivial"
	// SolverKMeansFallback marks buckets whose spectral solve failed and
	// were clustered by K-means on the raw points instead.
	SolverKMeansFallback = "kmeans-fallback"
)

// BucketReport describes one processed bucket.
type BucketReport struct {
	// Signature identifies the bucket.
	Signature uint64
	// Size is the number of points.
	Size int
	// K is the number of clusters extracted from this bucket.
	K int
	// GramBytes is the bucket's sub-similarity storage: 4 bytes/entry
	// for dense solves, the measured CSR footprint for sparse ones.
	GramBytes int64
	// Solver names the eigensolver the engine chose for this bucket
	// (spectral.Solver* constants, SolverTrivial, or SolverKMeansFallback).
	Solver string
	// NNZ is the number of stored similarity entries the solver saw.
	NNZ int64
	// Fill is NNZ divided by Size².
	Fill float64
	// SolveNanos is the bucket's solve wall time in nanoseconds.
	SolveNanos int64
}

// Result reports a DASC run.
type Result struct {
	// Labels[i] is the global cluster of point i. Cluster ids are
	// contiguous from 0; clusters never span buckets.
	Labels []int
	// Clusters is the total number of clusters produced.
	Clusters int
	// Buckets describes the processed partition.
	Buckets []BucketReport
	// GramBytes is the total approximated-Gram storage (Figure 6b).
	GramBytes int64
	// SignatureBits is the M actually used.
	SignatureBits int
	// MergeRadius is the Hamming merge radius actually used.
	MergeRadius int
	// SolveNanos is the summed per-bucket solve wall time (the solve
	// stage's total CPU-side work, independent of scheduling overlap).
	SolveNanos int64
	// Solvers counts processed buckets by solver name.
	Solvers map[string]int
	// Elapsed is the measured wall-clock time.
	Elapsed time.Duration
	// MapReduce aggregates the executor's counters across both
	// MapReduce stages (task/record totals, shuffle size, and — for the
	// TCP executor — wire traffic and codec time). Nil for runners that
	// do not execute through a mapreduce.Executor.
	MapReduce *mapreduce.Counters
}

// ErrBadConfig reports unusable configuration.
var ErrBadConfig = errors.New("core: bad config")

// resolve fills config defaults for a dataset of n points.
func (c Config) resolve(n int) (Config, int, error) {
	if n == 0 {
		return c, 0, errors.New("core: empty dataset")
	}
	if c.K == 0 {
		c.K = analytic.CategoryLaw(n)
	}
	if c.K < 1 || c.K > n {
		return c, 0, fmt.Errorf("%w: K=%d with N=%d", ErrBadConfig, c.K, n)
	}
	if c.M == 0 {
		c.M = lsh.DefaultM(n)
	}
	if c.M < 1 || c.M > lsh.MaxBits {
		return c, 0, fmt.Errorf("%w: M=%d", ErrBadConfig, c.M)
	}
	radius := 1 // paper default: P = M-1 permits one differing bit
	switch {
	case c.P == -1:
		radius = -1 // merging disabled
	case c.P == 0:
		radius = 1
	case c.P > c.M:
		return c, 0, fmt.Errorf("%w: P=%d > M=%d", ErrBadConfig, c.P, c.M)
	default:
		radius = c.M - c.P
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.SparseCutoff < 0 {
		return c, 0, fmt.Errorf("%w: SparseCutoff=%d", ErrBadConfig, c.SparseCutoff)
	}
	if c.Tables == 0 {
		c.Tables = 1
	}
	if c.Tables < 1 || c.Tables > lsh.MaxTables {
		return c, 0, fmt.Errorf("%w: Tables=%d out of range [1,%d]", ErrBadConfig, c.Tables, lsh.MaxTables)
	}
	if c.ProbeRadius < 0 || c.ProbeRadius > lsh.MaxBits {
		return c, 0, fmt.Errorf("%w: ProbeRadius=%d out of range [0,%d]", ErrBadConfig, c.ProbeRadius, lsh.MaxBits)
	}
	if c.MaxMergedBucket < 0 {
		return c, 0, fmt.Errorf("%w: MaxMergedBucket=%d negative", ErrBadConfig, c.MaxMergedBucket)
	}
	if c.Epsilon < 0 || c.Epsilon >= 1 || math.IsNaN(c.Epsilon) {
		return c, 0, fmt.Errorf("%w: Epsilon=%v outside [0,1)", ErrBadConfig, c.Epsilon)
	}
	if c.EmbedDim < 0 {
		return c, 0, fmt.Errorf("%w: EmbedDim=%d negative", ErrBadConfig, c.EmbedDim)
	}
	if c.EmbedDim > 0 && c.EmbedDim%2 != 0 {
		return c, 0, fmt.Errorf("%w: EmbedDim=%d must be even (cos/sin feature pairs)", ErrBadConfig, c.EmbedDim)
	}
	if c.EmbedCutoff < 0 {
		return c, 0, fmt.Errorf("%w: EmbedCutoff=%d negative", ErrBadConfig, c.EmbedCutoff)
	}
	if c.EmbedDim > 0 && c.EmbedCutoff == 0 {
		c.EmbedCutoff = DefaultEmbedCutoff
	}
	if c.SpillBytes < 0 {
		return c, 0, fmt.Errorf("%w: SpillBytes=%d negative", ErrBadConfig, c.SpillBytes)
	}
	if c.FitSample < 0 {
		return c, 0, fmt.Errorf("%w: FitSample=%d negative", ErrBadConfig, c.FitSample)
	}
	if c.FitSample == 0 {
		c.FitSample = DefaultFitSample
	}
	return c, radius, nil
}

// Cluster runs DASC in-process, processing buckets on a worker pool.
func Cluster(points *matrix.Dense, cfg Config) (*Result, error) {
	return ClusterContext(context.Background(), points, cfg)
}

// ClusterContext is Cluster with cancellation: the context is checked
// between pipeline stages and before every bucket solve.
func ClusterContext(ctx context.Context, points *matrix.Dense, cfg Config) (*Result, error) {
	return RunPipeline(ctx, points, cfg, &localRunner{})
}

// localRunner is the in-process backend: signatures are hashed inline
// and buckets are solved on a bounded goroutine pool.
type localRunner struct{}

func (*localRunner) Name() string      { return "local" }
func (*localRunner) NeedsHasher() bool { return false }

func (*localRunner) Signatures(ctx context.Context, p *Plan) (*lsh.SignatureSet, error) {
	return hashSignatures(ctx, p)
}

// hashSignatures is the in-process signature stage, shared by the local
// and incremental runners: the ensemble hashes every row under every
// table, in parallel for large inputs, with identical output at any
// worker count.
func hashSignatures(ctx context.Context, p *Plan) (*lsh.SignatureSet, error) {
	sigs, err := p.Ensemble.HashContext(ctx, p.Points)
	if err != nil {
		return nil, fmt.Errorf("core: signatures: %w", err)
	}
	return sigs, nil
}

func (*localRunner) Solve(ctx context.Context, p *Plan, part *lsh.Partition) ([]BucketSolution, error) {
	return solveBucketsParallel(ctx, p, part)
}

// solveBucketsParallel runs the per-bucket solve stage on a fixed pool
// of p.Cfg.Workers goroutines with LPT (longest-processing-time-first)
// scheduling: buckets are dispatched in descending size order, since a
// bucket's solve cost grows like Ni^2 (sub-Gram) to Ni^3 (eigensolve)
// and starting the giants first minimizes the makespan tail where one
// huge bucket begins after every small one has drained the pool.
// Workers pull from an atomic cursor over the sorted order and write
// each solution back at its original bucket index, so the returned
// slice is identical to in-order execution — scheduling never changes
// labels. Each worker reuses one sub-Gram scratch buffer across all the
// buckets it processes.
func solveBucketsParallel(ctx context.Context, p *Plan, part *lsh.Partition) ([]BucketSolution, error) {
	n := p.Points.Rows()
	sols := make([]BucketSolution, len(part.Buckets))
	errs := make([]error, len(part.Buckets))
	kf := kernel.NewGaussian(p.Sigma)

	order := make([]int, len(part.Buckets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(part.Buckets[order[a]].Indices) > len(part.Buckets[order[b]].Indices)
	})

	workers := p.Cfg.Workers
	if workers > len(order) {
		workers = len(order)
	}
	if workers < 1 {
		workers = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch []float64
			for {
				oi := int(cursor.Add(1)) - 1
				if oi >= len(order) {
					return
				}
				bi := order[oi]
				if err := ctx.Err(); err != nil {
					errs[bi] = err
					return
				}
				b := part.Buckets[bi]
				sol, err := clusterOneBucket(p.Points, b.Indices, p.Cfg, n, kf, p.Embedder, &scratch)
				if err != nil {
					errs[bi] = fmt.Errorf("core: bucket %x: %w", b.Signature, err)
					continue
				}
				sols[bi] = sol
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: solve cancelled: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sols, nil
}

// BucketK returns the number of clusters assigned to a bucket of size
// ni out of n points when the dataset-wide target is k: the bucket's
// proportional share, at least 1 and at most ni.
func BucketK(k, ni, n int) int {
	ki := int(math.Round(float64(k) * float64(ni) / float64(n)))
	if ki < 1 {
		ki = 1
	}
	if ki > ni {
		ki = ni
	}
	return ki
}

// willEmbed reports whether the embed policy claims a bucket of ni
// points in a dataset of n — the engine's gate plus the trivial-bucket
// short-circuits that precede it in clusterOneBucket. The shipped
// driver commits to the embedded record shape with this predicate, so
// it must stay exactly in step with the engine's decision.
func willEmbed(cfg Config, ni, n int) bool {
	if cfg.EmbedDim <= 0 || cfg.EmbedCutoff <= 0 || ni < cfg.EmbedCutoff {
		return false
	}
	ki := BucketK(cfg.K, ni, n)
	return ki > 1 && ki < ni
}

// clusterOneBucket runs the per-bucket pipeline through the spectral
// solve engine: sub-Gram (dense or thresholded CSR per the engine's
// policy), normalized Laplacian, eigenvectors, K-means — or, for
// buckets the embed policy claims, kernel embedding + k-means with no
// Gram at all. Tiny buckets short-circuit with SolverTrivial.
//
// Dense sub-Grams (and embedded row blocks) are built inside *buf
// (grown as needed and reused across calls — each worker owns one) and
// consumed in place: the Laplacian overwrites it, so nothing retains
// the buffer after the solve. buf may point to a nil slice on first
// use; sparse solves never touch it.
func clusterOneBucket(points *matrix.Dense, indices []int, cfg Config, n int, kf kernel.Kernel, emb embed.Embedder, buf *[]float64) (BucketSolution, error) {
	ni := len(indices)
	ki := BucketK(cfg.K, ni, n)
	if ni == 1 || ki == 1 {
		return BucketSolution{Labels: make([]int, ni), K: 1, Solver: SolverTrivial}, nil
	}
	if ki == ni {
		labels := make([]int, ni)
		for i := range labels {
			labels[i] = i
		}
		return BucketSolution{Labels: labels, K: ni, Solver: SolverTrivial}, nil
	}
	ecfg := spectral.EngineConfig{
		K:            ki,
		Seed:         cfg.Seed + int64(indices[0]),
		SparseCutoff: cfg.SparseCutoff,
		Epsilon:      cfg.Epsilon,
		Embedder:     emb,
		EmbedCutoff:  cfg.EmbedCutoff,
	}
	res, stats, err := spectral.ClusterBucket(points, indices, kf, ecfg, buf)
	if err == nil {
		return BucketSolution{
			Labels: res.Labels, K: ki,
			Solver: stats.Solver, NNZ: stats.NNZ, Fill: stats.Fill,
			SolveNanos: stats.Nanos, GramBytes: stats.GramBytes,
		}, nil
	}
	// Degenerate sub-Gram (e.g. all-zero similarities): fall back to
	// K-means on the raw bucket points rather than failing the run.
	bucketPts := matrix.NewDense(ni, points.Cols())
	for i, idx := range indices {
		copy(bucketPts.Row(i), points.Row(idx))
	}
	km, kerr := kmeans.Run(bucketPts, kmeans.Config{K: ki, Seed: cfg.Seed})
	if kerr != nil {
		return BucketSolution{}, fmt.Errorf("spectral (%v) and kmeans fallback (%v) both failed", err, kerr)
	}
	return BucketSolution{
		Labels: km.Labels, K: ki,
		Solver: SolverKMeansFallback, NNZ: stats.NNZ, Fill: stats.Fill,
		SolveNanos: stats.Nanos, GramBytes: stats.GramBytes,
	}, nil
}
