package core

// This file is the canonical DASC plan: every public driver is a thin
// adapter over one four-stage dataflow —
//
//	signature   : hash every point to an M-bit LSH signature,
//	bucket-merge: group by signature and merge near-duplicates (Eq. 6),
//	solve       : per-bucket sub-Gram + spectral clustering,
//	assembly    : offset per-bucket labels into one global labeling.
//
// The stages that admit different execution strategies (signature and
// solve) are behind the Runner interface; bucket-merge and assembly are
// pure driver-side functions shared by every runner, so the drivers
// cannot drift apart. Runners receive a context.Context and must return
// promptly with its error once it is cancelled.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/embed"
	"repro/internal/kernel"
	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
)

// Plan is the resolved execution plan shared by all pipeline stages:
// the dataset, the defaulted configuration, the fitted hash ensemble,
// the merge radius, and the kernel bandwidth.
type Plan struct {
	// Points is the dataset, one row per point.
	Points *matrix.Dense
	// Cfg is the configuration with every default resolved (K, M,
	// Tables, Workers filled in).
	Cfg Config
	// Radius is the Hamming merge radius derived from P and M.
	Radius int
	// Sigma is the resolved Gaussian kernel bandwidth.
	Sigma float64
	// Ensemble is the fitted multi-table hash front-end; with
	// Tables=1 and ProbeRadius=0 it degenerates to the paper's
	// single-signature partition.
	Ensemble *lsh.Ensemble
	// Family is table 0 of the ensemble — the single-signature view
	// kept for routing and diagnostics call sites.
	Family lsh.Family
	// Hasher is the fitted span/threshold hasher of table 0 when the
	// paper's scheme is in use (always non-nil for distributed runners,
	// which ship every table's parameters to worker processes); nil
	// when a custom Family from Config is in use.
	Hasher *lsh.Hasher
	// Embedder is the fitted kernel embedding of the embed-and-conquer
	// solve path; non-nil exactly when Cfg.EmbedDim > 0. It is a pure
	// function of (dataset dims, EmbedDim, Sigma, Seed), so every driver
	// fits bitwise the same map.
	Embedder embed.Embedder
}

// Hashers returns the fitted span/threshold hasher of every ensemble
// table, or an error when any table uses a different family — the
// distributed runners ship these parameters to worker processes.
func (p *Plan) Hashers() ([]*lsh.Hasher, error) {
	fams := p.Ensemble.Families()
	hashers := make([]*lsh.Hasher, len(fams))
	for t, f := range fams {
		h, ok := f.(*lsh.Hasher)
		if !ok {
			return nil, fmt.Errorf("core: table %d is %T, distributed runners need the fitted hasher", t, f)
		}
		hashers[t] = h
	}
	return hashers, nil
}

// BucketSolution is the solve stage's output for one bucket: local
// cluster ids per bucket point (bucket order), the number of clusters
// extracted, and the solve engine's accounting. Solver/NNZ/Fill/
// SolveNanos/GramBytes mirror the BucketReport fields; a zero GramBytes
// makes assembly fall back to the dense 4·Size² estimate.
type BucketSolution struct {
	Labels     []int
	K          int
	Solver     string
	NNZ        int64
	Fill       float64
	SolveNanos int64
	GramBytes  int64
}

// Runner executes the backend-specific pipeline stages. Implementations
// exist for the in-process worker pool, the bounded-memory incremental
// driver, and the two MapReduce formulations.
type Runner interface {
	// Name identifies the runner in errors.
	Name() string
	// NeedsHasher reports whether the runner requires the fitted
	// span/threshold Hasher (distributed runners ship its parameters);
	// such runners ignore a custom Config.Family.
	NeedsHasher() bool
	// Signatures computes the per-point per-table LSH signatures
	// (stage 1).
	Signatures(ctx context.Context, p *Plan) (*lsh.SignatureSet, error)
	// Solve clusters every bucket of the partition (stage 3), returning
	// one solution per bucket in partition order.
	Solve(ctx context.Context, p *Plan, part *lsh.Partition) ([]BucketSolution, error)
}

// NewPlan resolves the configuration against the dataset and fits the
// hash ensemble and kernel bandwidth. needsHasher forces the paper's
// span/threshold hashers even when Config.Family is set (the behaviour
// of the distributed drivers, whose jobs ship hash thresholds).
func NewPlan(points *matrix.Dense, cfg Config, needsHasher bool) (*Plan, error) {
	n := points.Rows()
	cfg, radius, err := cfg.resolve(n)
	if err != nil {
		return nil, err
	}
	ecfg := lsh.EnsembleConfig{
		Tables:          cfg.Tables,
		ProbeRadius:     cfg.ProbeRadius,
		MaxMergedBucket: cfg.MaxMergedBucket,
	}
	p := &Plan{Points: points, Radius: radius}
	if cfg.Family != nil && !needsHasher {
		ens, err := lsh.EnsembleFrom(cfg.Family, ecfg)
		if err != nil {
			return nil, fmt.Errorf("core: lsh: %w", err)
		}
		p.Ensemble = ens
		p.Family = ens.Families()[0]
		cfg.M = ens.Bits()
		cfg.Tables = ens.Tables()
	} else {
		ens, err := lsh.FitEnsemble(points, lsh.Config{
			M: cfg.M, Policy: cfg.Policy, Bins: cfg.Bins, Seed: cfg.Seed,
		}, ecfg)
		if err != nil {
			return nil, fmt.Errorf("core: lsh: %w", err)
		}
		p.Ensemble = ens
		p.Family = ens.Families()[0]
		p.Hasher = p.Family.(*lsh.Hasher)
	}
	p.Sigma = cfg.Sigma
	if p.Sigma <= 0 {
		p.Sigma = kernel.MedianSigma(points, 512, cfg.Seed)
	}
	if cfg.EmbedDim > 0 {
		emb, err := embed.NewRFF(points.Cols(), cfg.EmbedDim, p.Sigma, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("core: embed: %w", err)
		}
		p.Embedder = emb
	}
	p.Cfg = cfg
	return p, nil
}

// RunPipeline executes the canonical DASC dataflow on the given runner.
// All four public drivers delegate here, so for a fixed seed they
// produce identical labels regardless of the execution backend.
func RunPipeline(ctx context.Context, points *matrix.Dense, cfg Config, r Runner) (*Result, error) {
	start := time.Now()
	p, err := NewPlan(points, cfg, r.NeedsHasher())
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %s: %w", r.Name(), err)
	}

	// Stage 1: per-table signatures.
	sigs, err := r.Signatures(ctx, p)
	if err != nil {
		return nil, err
	}
	if sigs.Len() != points.Rows() || sigs.NumTables() != p.Ensemble.Tables() {
		return nil, fmt.Errorf("core: %s produced %d signatures x %d tables for %d points x %d tables",
			r.Name(), sigs.Len(), sigs.NumTables(), points.Rows(), p.Ensemble.Tables())
	}

	// Stage 2: bucket-merge, always on the driver (the paper merges
	// "before applying the reducer" of its second job). The ensemble
	// merges within each table (Eq. 6), then across tables and probe
	// hits; with Tables=1 and ProbeRadius=0 this is byte-identical to
	// the single-signature partition.
	part, err := p.Ensemble.Partition(p.Points, sigs, p.Radius)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", r.Name(), err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %s: %w", r.Name(), err)
	}

	// Stage 3: per-bucket solve.
	sols, err := r.Solve(ctx, p, part)
	if err != nil {
		return nil, err
	}

	// Stage 4: global label assembly.
	res, err := assembleSolutions(part, sols, points.Rows())
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", r.Name(), err)
	}
	res.SignatureBits = p.Cfg.M
	res.MergeRadius = p.Radius
	res.Elapsed = time.Since(start)
	if cs, ok := r.(counterSource); ok {
		res.MapReduce = cs.MapReduceCounters()
	}
	return res, nil
}

// counterSource is implemented by runners that execute through a
// mapreduce.Executor and can report the aggregated job counters.
type counterSource interface {
	MapReduceCounters() *mapreduce.Counters
}

// assembleSolutions is the single label-assembly path: cluster-id
// offsets are assigned in partition order (ascending bucket signature),
// so every runner yields the same global labeling for the same
// per-bucket solutions.
func assembleSolutions(part *lsh.Partition, sols []BucketSolution, n int) (*Result, error) {
	if len(sols) != len(part.Buckets) {
		return nil, fmt.Errorf("%d solutions for %d buckets", len(sols), len(part.Buckets))
	}
	res := &Result{Labels: make([]int, n)}
	offset := 0
	for bi, b := range part.Buckets {
		s := sols[bi]
		if len(s.Labels) != len(b.Indices) {
			return nil, fmt.Errorf("bucket %x: %d labels for %d points", b.Signature, len(s.Labels), len(b.Indices))
		}
		for pos, idx := range b.Indices {
			if idx < 0 || idx >= n {
				return nil, fmt.Errorf("bucket %x: point %d out of range", b.Signature, idx)
			}
			res.Labels[idx] = offset + s.Labels[pos]
		}
		gb := s.GramBytes
		if gb == 0 {
			// Trivial buckets and solvers that predate the stats record
			// report the dense footprint, matching the pre-engine metric.
			gb = 4 * int64(len(b.Indices)) * int64(len(b.Indices))
		}
		res.Buckets = append(res.Buckets, BucketReport{
			Signature:  b.Signature,
			Size:       len(b.Indices),
			K:          s.K,
			GramBytes:  gb,
			Solver:     s.Solver,
			NNZ:        s.NNZ,
			Fill:       s.Fill,
			SolveNanos: s.SolveNanos,
		})
		res.GramBytes += gb
		res.SolveNanos += s.SolveNanos
		if s.Solver != "" {
			if res.Solvers == nil {
				res.Solvers = make(map[string]int)
			}
			res.Solvers[s.Solver]++
		}
		offset += s.K
	}
	res.Clusters = offset
	return res, nil
}
