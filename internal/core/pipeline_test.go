package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/mapreduce"
)

// TestAllDriversProduceIdenticalLabels is the pipeline's central
// guarantee: the four public drivers are thin adapters over one
// dataflow, so for a fixed seed their labels, cluster counts, and Gram
// accounting must agree exactly.
func TestAllDriversProduceIdenticalLabels(t *testing.T) {
	l := mixture(t, 240, 12, 4, 0.03, 40)
	cfg := Config{K: 4, Seed: 41}

	batch, err := Cluster(l.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := ClusterIncremental(l.Points, cfg, batch.GramBytes/2+1)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := ClusterMapReduce(l.Points, cfg, &mapreduce.Local{}, "pipeline-test")
	if err != nil {
		t.Fatal(err)
	}
	shipped, err := ClusterMapReduceShipped(l.Points, cfg, &mapreduce.Local{})
	if err != nil {
		t.Fatal(err)
	}

	others := map[string]*Result{
		"incremental": &inc.Result,
		"mapreduce":   mr,
		"shipped":     shipped,
	}
	for name, res := range others {
		if len(res.Labels) != len(batch.Labels) {
			t.Fatalf("%s: %d labels, batch has %d", name, len(res.Labels), len(batch.Labels))
		}
		for i := range batch.Labels {
			if res.Labels[i] != batch.Labels[i] {
				t.Fatalf("%s: label[%d] = %d, batch %d", name, i, res.Labels[i], batch.Labels[i])
			}
		}
		if res.Clusters != batch.Clusters || res.GramBytes != batch.GramBytes {
			t.Errorf("%s bookkeeping differs: %d clusters / %d bytes vs %d / %d",
				name, res.Clusters, res.GramBytes, batch.Clusters, batch.GramBytes)
		}
	}
	if inc.Waves < 2 {
		t.Errorf("half-budget incremental run used %d wave(s), want >= 2", inc.Waves)
	}
}

// TestPipelineCancellation checks every driver's Context variant returns
// context.Canceled when cancelled up front.
func TestPipelineCancellation(t *testing.T) {
	l := mixture(t, 120, 8, 3, 0.03, 7)
	cfg := Config{K: 3, Seed: 9}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := ClusterContext(ctx, l.Points, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("ClusterContext err = %v, want context.Canceled", err)
	}
	if _, err := ClusterIncrementalContext(ctx, l.Points, cfg, 1<<20); !errors.Is(err, context.Canceled) {
		t.Errorf("ClusterIncrementalContext err = %v, want context.Canceled", err)
	}
	if _, err := ClusterMapReduceContext(ctx, l.Points, cfg, &mapreduce.Local{}, "cancel-test"); !errors.Is(err, context.Canceled) {
		t.Errorf("ClusterMapReduceContext err = %v, want context.Canceled", err)
	}
	if _, err := ClusterMapReduceShippedContext(ctx, l.Points, cfg, &mapreduce.Local{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ClusterMapReduceShippedContext err = %v, want context.Canceled", err)
	}
	if _, _, err := EMRFlowContext(ctx, l.Points, cfg, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("EMRFlowContext err = %v, want context.Canceled", err)
	}
}

// TestNewPlanFamilyOverride pins the Family-vs-hasher contract: an
// in-process plan honours a custom family, a distributed plan ignores
// it and fits the paper's hasher.
func TestNewPlanFamilyOverride(t *testing.T) {
	l := mixture(t, 100, 8, 2, 0.03, 11)
	fam := fixedFamily{bits: 3}
	p, err := NewPlan(l.Points, Config{K: 2, Seed: 1, Family: fam}, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hasher != nil || p.Cfg.M != 3 {
		t.Errorf("in-process plan: hasher=%v M=%d, want custom family with M=3", p.Hasher, p.Cfg.M)
	}
	p, err = NewPlan(l.Points, Config{K: 2, Seed: 1, Family: fam}, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hasher == nil {
		t.Error("distributed plan must fit the paper's hasher and ignore Family")
	}
}

// fixedFamily is a trivial lsh.Family stub for plan tests.
type fixedFamily struct{ bits int }

func (f fixedFamily) Bits() int                    { return f.bits }
func (f fixedFamily) Signature(v []float64) uint64 { return uint64(len(v)) % (1 << uint(f.bits)) }
