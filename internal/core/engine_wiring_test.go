package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/spectral"
)

// blobPoints builds k well-separated Gaussian blobs of per points each
// in d dimensions, returning the matrix and the true blob of each row.
// Separation and noise are chosen so a tight explicit Sigma thresholds
// cross-blob similarities below epsilon.
func blobPoints(seed int64, k, per, d int, sep, noise float64) (*matrix.Dense, []int) {
	rng := rand.New(rand.NewSource(seed))
	pts := matrix.NewDense(k*per, d)
	truth := make([]int, k*per)
	for c := 0; c < k; c++ {
		for i := 0; i < per; i++ {
			row := pts.Row(c*per + i)
			for j := range row {
				row[j] = float64(c)*sep + noise*rng.NormFloat64()
			}
			truth[c*per+i] = c
		}
	}
	return pts, truth
}

// TestClusterSolveCounters: a default dense run must report a solver
// for every bucket, and the Result aggregates must equal the per-bucket
// sums.
func TestClusterSolveCounters(t *testing.T) {
	l := mixture(t, 200, 16, 4, 0.02, 31)
	res, err := Cluster(l.Points, Config{K: 4, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solvers == nil {
		t.Fatal("Solvers map not populated")
	}
	counted := 0
	var nanos int64
	for _, b := range res.Buckets {
		if b.Solver == "" {
			t.Fatalf("bucket %x has no solver label", b.Signature)
		}
		if b.Solver == spectral.SolverSparseLanczos {
			t.Fatalf("default config must never go sparse, bucket %x did", b.Signature)
		}
		nanos += b.SolveNanos
	}
	for _, c := range res.Solvers {
		counted += c
	}
	if counted != len(res.Buckets) {
		t.Fatalf("Solvers counts %d buckets, partition has %d", counted, len(res.Buckets))
	}
	if nanos != res.SolveNanos {
		t.Fatalf("SolveNanos %d != bucket sum %d", res.SolveNanos, nanos)
	}
}

// TestClusterSparseMode: with a tight bandwidth, few signature bits
// (big buckets spanning several blobs) and sparse mode on, at least one
// bucket must solve through the CSR path, shrink the reported Gram
// storage below the dense total, and still recover the blobs.
func TestClusterSparseMode(t *testing.T) {
	pts, truth := blobPoints(41, 8, 100, 16, 12, 0.3)
	cfg := Config{K: 8, M: 1, Sigma: 1.0, Seed: 42, SparseCutoff: 128, Epsilon: 1e-4}
	res, err := Cluster(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solvers[spectral.SolverSparseLanczos] == 0 {
		t.Fatalf("no bucket took the sparse path: %v", res.Solvers)
	}
	var dense int64
	for _, b := range res.Buckets {
		dense += 4 * int64(b.Size) * int64(b.Size)
		if b.Solver == spectral.SolverSparseLanczos {
			if b.NNZ == 0 || b.Fill <= 0 || b.Fill > spectral.MaxSparseFill {
				t.Fatalf("sparse bucket stats: %+v", b)
			}
			if b.GramBytes >= 4*int64(b.Size)*int64(b.Size) {
				t.Fatalf("sparse bucket %x stores %d bytes, dense is %d", b.Signature, b.GramBytes, 4*int64(b.Size)*int64(b.Size))
			}
		}
	}
	if res.GramBytes >= dense {
		t.Fatalf("sparse run Gram %d not below dense %d", res.GramBytes, dense)
	}
	acc, err := metricsAccuracy(truth, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("sparse-mode accuracy = %v", acc)
	}
}

// TestClusterSparseModeWorkerInvariant: the sparse engine's labels and
// solver policy must not depend on the worker count.
func TestClusterSparseModeWorkerInvariant(t *testing.T) {
	pts, _ := blobPoints(51, 8, 80, 12, 10, 0.3)
	cfg := Config{K: 8, M: 1, Sigma: 1.0, Seed: 52, SparseCutoff: 128, Epsilon: 1e-4}
	cfg.Workers = 1
	base, err := Cluster(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		cfg.Workers = workers
		res, err := Cluster(pts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.Labels {
			if res.Labels[i] != base.Labels[i] {
				t.Fatalf("workers=%d: label[%d] = %d vs %d", workers, i, res.Labels[i], base.Labels[i])
			}
		}
		for bi, b := range res.Buckets {
			want := base.Buckets[bi]
			if b.Solver != want.Solver || b.NNZ != want.NNZ || b.GramBytes != want.GramBytes {
				t.Fatalf("workers=%d: bucket %x policy drifted: %+v vs %+v", workers, b.Signature, b, want)
			}
		}
	}
}

// TestResolveValidatesEngineConfig: the solve-engine knobs are
// validated with the rest of the configuration.
func TestResolveValidatesEngineConfig(t *testing.T) {
	l := mixture(t, 20, 4, 2, 0.05, 61)
	bad := []Config{
		{K: 2, SparseCutoff: -1},
		{K: 2, Epsilon: -0.1},
		{K: 2, Epsilon: 1.0},
	}
	for _, cfg := range bad {
		if _, err := Cluster(l.Points, cfg); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("cfg %+v: err = %v, want ErrBadConfig", cfg, err)
		}
	}
}

// TestMapReduceCarriesSolverStats: both MapReduce formulations must
// report the same per-bucket solver stats as the local driver — the
// stats travel as length-distinguished stage-2 records.
func TestMapReduceCarriesSolverStats(t *testing.T) {
	pts, _ := blobPoints(71, 8, 60, 12, 10, 0.3)
	cfg := Config{K: 8, M: 1, Sigma: 1.0, Seed: 72, SparseCutoff: 128, Epsilon: 1e-4}
	local, err := Cluster(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if local.Solvers[spectral.SolverSparseLanczos] == 0 {
		t.Fatalf("fixture never goes sparse: %v", local.Solvers)
	}
	viaMR, err := ClusterMapReduce(pts, cfg, &mapreduce.Local{Workers: 3}, "test-stats")
	if err != nil {
		t.Fatal(err)
	}
	viaShipped, err := ClusterMapReduceShipped(pts, cfg, &mapreduce.Local{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]*Result{"mapreduce": viaMR, "shipped": viaShipped} {
		if res.GramBytes != local.GramBytes {
			t.Fatalf("%s: GramBytes %d vs local %d", name, res.GramBytes, local.GramBytes)
		}
		for bi, b := range res.Buckets {
			want := local.Buckets[bi]
			if b.Solver != want.Solver || b.NNZ != want.NNZ || b.Fill != want.Fill || b.GramBytes != want.GramBytes {
				t.Fatalf("%s: bucket %x stats %+v, local %+v", name, b.Signature, b, want)
			}
			if b.SolveNanos <= 0 && b.Solver != SolverTrivial {
				t.Fatalf("%s: bucket %x missing solve time", name, b.Signature)
			}
		}
		for solver, count := range local.Solvers {
			if res.Solvers[solver] != count {
				t.Fatalf("%s: Solvers[%s] = %d, local %d", name, solver, res.Solvers[solver], count)
			}
		}
	}
}

// TestBucketStatsCodecRoundTrip pins the wire format of the stats
// record, including its length-based separation from label records.
func TestBucketStatsCodecRoundTrip(t *testing.T) {
	in := BucketSolution{
		Solver: spectral.SolverSparseLanczos,
		NNZ:    12345, Fill: 0.17, SolveNanos: 987654321, GramBytes: 98760,
	}
	blob := encodeBucketStats(in)
	if len(blob) < bucketStatsLen || len(blob) == 12 {
		t.Fatalf("stats record length %d collides with label records", len(blob))
	}
	var out BucketSolution
	decodeBucketStats(blob, &out)
	if out.Solver != in.Solver || out.NNZ != in.NNZ || out.Fill != in.Fill ||
		out.SolveNanos != in.SolveNanos || out.GramBytes != in.GramBytes {
		t.Fatalf("round trip %+v -> %+v", in, out)
	}
}
