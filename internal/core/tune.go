package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/kernel"
	"repro/internal/lsh"
	"repro/internal/matrix"
)

// TuneReport records one point of the M sweep performed by TuneM.
type TuneReport struct {
	M          int
	Buckets    int
	FnormRatio float64
	GramFrac   float64
}

// TuneM picks the largest signature width whose approximated Gram
// matrix still retains at least minFnormRatio of the full matrix's
// Frobenius norm — the paper's §5.5 knob ("through the tuning of the
// parameter M, we can control the tradeoff between the accuracy of the
// clustering algorithm and the degree of parallelization"), driven by
// the Figure 5 measurement. The norm ratio is estimated on a sampled
// subset of pairs so tuning stays far below the O(N^2) of the matrices
// it reasons about. Returns the chosen M and the sweep.
func TuneM(points *matrix.Dense, cfg Config, minFnormRatio float64, samplePairs int) (int, []TuneReport, error) {
	n := points.Rows()
	if n < 2 {
		return 0, nil, fmt.Errorf("core: TuneM needs at least 2 points")
	}
	if minFnormRatio <= 0 || minFnormRatio > 1 {
		return 0, nil, fmt.Errorf("core: minFnormRatio %v out of (0,1]", minFnormRatio)
	}
	if samplePairs <= 0 {
		samplePairs = 20000
	}
	sigma := cfg.Sigma
	if sigma <= 0 {
		sigma = kernel.MedianSigma(points, 512, cfg.Seed)
	}
	kf := kernel.NewGaussian(sigma)

	// Sample pairs once; reuse them for every M so the sweep is
	// monotone in the partition, not in sampling noise.
	rng := rand.New(rand.NewSource(cfg.Seed + 0x7A11))
	type pair struct {
		i, j int
		v2   float64 // squared similarity
	}
	pairs := make([]pair, 0, samplePairs)
	var fullSq float64
	for len(pairs) < samplePairs {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := kf.Eval(points.Row(i), points.Row(j))
		p := pair{i, j, v * v}
		pairs = append(pairs, p)
		fullSq += p.v2
	}
	if matrix.IsZero(fullSq) {
		return 0, nil, fmt.Errorf("core: sampled similarities are all zero; bandwidth %v too small", sigma)
	}

	maxM := lsh.DefaultM(n) * 3
	if maxM > 24 {
		maxM = 24
	}
	best := 1
	var sweep []TuneReport
	for m := 1; m <= maxM; m++ {
		h, err := lsh.Fit(points, lsh.Config{M: m, Policy: cfg.Policy, Bins: cfg.Bins, Seed: cfg.Seed})
		if err != nil {
			return 0, nil, err
		}
		radius := 1
		if cfg.P == -1 {
			radius = -1
		}
		part := h.Partition(points, radius)
		bucketOf := make([]int, n)
		for bi, b := range part.Buckets {
			for _, idx := range b.Indices {
				bucketOf[idx] = bi
			}
		}
		var keptSq float64
		for _, p := range pairs {
			if bucketOf[p.i] == bucketOf[p.j] {
				keptSq += p.v2
			}
		}
		ratio := math.Sqrt(keptSq / fullSq)
		sweep = append(sweep, TuneReport{
			M:          m,
			Buckets:    part.NumBuckets(),
			FnormRatio: ratio,
			GramFrac:   float64(part.ApproxGramEntries()) / (float64(n) * float64(n)),
		})
		if ratio >= minFnormRatio {
			best = m
		}
	}
	return best, sweep, nil
}
