package core

import (
	"context"
	"fmt"

	"repro/internal/analytic"
	"repro/internal/embed"
	"repro/internal/emr"
	"repro/internal/lsh"
	"repro/internal/matrix"
)

// EMRFlow builds the paper's §5.1 job flow for a dataset: step 1
// partitions the input with LSH (one task per input split), step 2 runs
// spectral clustering on every bucket (one task per bucket, cost from
// the §4.1 complexity model with the given beta), and step 3 collects
// results. The real LSH partition of the dataset drives the task list,
// so simulated makespans reflect the actual bucket skew.
//
// The returned flow can be scheduled on emr.Clusters of different sizes
// to reproduce Table 3's elasticity study.
func EMRFlow(points *matrix.Dense, cfg Config, beta float64) (*emr.JobFlow, *lsh.Partition, error) {
	return EMRFlowContext(context.Background(), points, cfg, beta)
}

// EMRFlowContext is EMRFlow with cancellation: the context is checked
// between the hash fit and the partition pass.
func EMRFlowContext(ctx context.Context, points *matrix.Dense, cfg Config, beta float64) (*emr.JobFlow, *lsh.Partition, error) {
	n := points.Rows()
	cfg, radius, err := cfg.resolve(n)
	if err != nil {
		return nil, nil, err
	}
	if beta <= 0 {
		beta = analytic.DefaultModel().Beta
	}
	ens, err := lsh.FitEnsemble(points, lsh.Config{
		M: cfg.M, Policy: cfg.Policy, Bins: cfg.Bins, Seed: cfg.Seed,
	}, lsh.EnsembleConfig{
		Tables:          cfg.Tables,
		ProbeRadius:     cfg.ProbeRadius,
		MaxMergedBucket: cfg.MaxMergedBucket,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: lsh: %w", err)
	}
	sigs, err := ens.HashContext(ctx, points)
	if err != nil {
		return nil, nil, fmt.Errorf("core: emr flow: %w", err)
	}
	part, err := ens.Partition(points, sigs, radius)
	if err != nil {
		return nil, nil, fmt.Errorf("core: emr flow: %w", err)
	}
	flow := BuildFlow(part, cfg, n, points.Cols(), beta)
	return flow, part, nil
}

// EMRDiskBandwidth is the simulated sequential local-disk bandwidth in
// bytes per second — a 2012 m1.small-era spinning disk. Flow builders
// divide a task's DiskBytes by it to fold spill and shard I/O time
// into the task cost.
const EMRDiskBandwidth = 50 << 20

// spillRecordBytes is the modeled on-disk framed size of one stage-1
// shuffle record (19-byte table:signature key + 4-byte index value +
// two uvarint length prefixes), matching the spill run-file framing.
const spillRecordBytes = 25

// EMRCodecBandwidth is the simulated single-core flate throughput in
// bytes per second (measured against raw bytes pushed through the
// codec at flate.BestSpeed on 2012-era hardware). With
// Config.Compression on, flow builders bill raw/EMRCodecBandwidth of
// CPU per compression or decompression pass.
const EMRCodecBandwidth = 200 << 20

// EMRSpillCompressionRatio is the modeled compressed/raw size ratio of
// deflated spill runs. Stage-1 records are signature-keyed and highly
// repetitive, so BestSpeed lands well under half size; 0.4 matches the
// measured BENCH ratios conservatively.
const EMRSpillCompressionRatio = 0.4

// diskSeconds converts modeled disk traffic into task-cost seconds.
func diskSeconds(bytes int64) float64 {
	return float64(bytes) / float64(EMRDiskBandwidth)
}

// codecSeconds converts raw bytes pushed through the flate codec into
// task-cost seconds (one pass; callers bill compress and decompress
// separately).
func codecSeconds(rawBytes int64) float64 {
	return float64(rawBytes) / float64(EMRCodecBandwidth)
}

// spillDiskAndCodec models one spill write + merge re-read of raw
// framed bytes under the configured data plane: with compression the
// disk moves the deflated bytes both ways and the CPU pays one deflate
// plus one inflate pass over the raw size.
func spillDiskAndCodec(raw int64, compressed bool) (disk int64, codec float64) {
	if !compressed {
		return 2 * raw, 0
	}
	written := int64(float64(raw) * EMRSpillCompressionRatio)
	return 2 * written, 2 * codecSeconds(raw)
}

// BuildFlow constructs the job flow from an existing partition. Costs
// follow §4.1: hashing is beta*M per point per split, multiplied by the
// number of ensemble tables (each table hashes every point); a bucket
// of size Ni with Ki clusters costs beta*(2 Ni^2 + 2 Ki Ni); collection
// is a single linear pass. Memory per bucket is the 4 Ni^2-byte
// sub-Gram.
//
// With embed mode on (EmbedDim > 0), the map side additionally pays
// beta*d′ per point for the feature transform, and buckets the embed
// policy claims become dot-product-bound: cost beta*(2 Ni d′ + 2 Ki Ni)
// and memory 8·Ni·d′ (the embedded rows), no Gram term at all.
//
// With cfg.SpillBytes > 0 the flow models the out-of-core shuffle:
// every stage-1 record is written to a spill run and re-read by the
// merge (2× its framed size), billed at EMRDiskBandwidth and reported
// through Task.DiskBytes. BuildFlowSharded additionally models
// demand-read shard input.
func BuildFlow(part *lsh.Partition, cfg Config, n, dims int, beta float64) *emr.JobFlow {
	return buildFlow(part, cfg, n, dims, beta, false)
}

// BuildFlowSharded is BuildFlow for the out-of-core sharded data plane:
// stage-1 tasks stream their input split from shard files instead of
// holding it resident (memory drops to the streaming working set, disk
// gains the 8·dims bytes per row), and bucket tasks demand-read their
// Ni rows before solving. Combine with cfg.SpillBytes for the full
// out-of-core model.
func BuildFlowSharded(part *lsh.Partition, cfg Config, n, dims int, beta float64) *emr.JobFlow {
	return buildFlow(part, cfg, n, dims, beta, true)
}

func buildFlow(part *lsh.Partition, cfg Config, n, dims int, beta float64, sharded bool) *emr.JobFlow {
	if beta <= 0 {
		beta = analytic.DefaultModel().Beta
	}
	m := cfg.M
	if m == 0 {
		m = lsh.DefaultM(n)
	}
	tables := cfg.Tables
	if tables < 1 {
		tables = 1
	}
	embedDim := cfg.EmbedDim
	embedCutoff := cfg.EmbedCutoff
	if embedDim > 0 && embedCutoff == 0 {
		embedCutoff = DefaultEmbedCutoff // mirror resolve for direct callers
	}
	const splitSize = 1024
	var lshTasks []emr.Task
	for start := 0; start < n; start += splitSize {
		size := splitSize
		if start+size > n {
			size = n - start
		}
		mapCost := beta * float64(m) * float64(tables) * float64(size)
		if embedDim > 0 {
			mapCost += beta * float64(embedDim) * float64(size)
		}
		var disk int64
		mem := int64(size) * int64(dims) * 8
		if sharded {
			// The mapper streams its rows from shard files: the split's
			// bytes move from resident memory to disk reads, leaving only
			// the row buffer and buffered output records in RAM.
			disk += int64(size) * int64(dims) * 8
			mem = int64(dims)*8 + int64(size)*int64(tables)*spillRecordBytes
		}
		var codec float64
		if cfg.SpillBytes > 0 {
			// Out-of-core shuffle: every record is written to a spill run
			// and re-read by the k-way merge — deflated on disk, at one
			// flate pass each way, when the compressed plane is on.
			sdisk, scodec := spillDiskAndCodec(int64(size)*int64(tables)*spillRecordBytes, cfg.Compression)
			disk += sdisk
			codec += scodec
		}
		lshTasks = append(lshTasks, emr.Task{
			Name:        fmt.Sprintf("lsh-split-%d", start/splitSize),
			Cost:        mapCost + diskSeconds(disk) + codec,
			MemoryBytes: mem,
			DiskBytes:   disk,
		})
	}

	var clusterTasks []emr.Task
	for _, b := range part.Buckets {
		ni := len(b.Indices)
		ki := BucketK(cfg.K, ni, n)
		cost := beta * (2*float64(ni)*float64(ni) + 2*float64(ki)*float64(ni))
		mem := 4 * int64(ni) * int64(ni)
		if embedDim > 0 && ni >= embedCutoff && ki > 1 && ki < ni {
			cost = beta * (2*float64(ni)*float64(embedDim) + 2*float64(ki)*float64(ni))
			mem = embed.Bytes(ni, embedDim)
		}
		var disk int64
		if sharded {
			// The reducer demand-reads exactly its bucket's rows, which
			// then sit beside the Gram (or embedded block) while solving.
			disk += int64(ni) * int64(dims) * 8
			mem += int64(ni) * int64(dims) * 8
		}
		var codec float64
		if cfg.SpillBytes > 0 {
			// Stage-2 shuffle spill: the bucket's index record (4·Ni plus
			// the 16-byte signature key and framing) is written and merged
			// back from disk, deflated when the compressed plane is on.
			sdisk, scodec := spillDiskAndCodec(4*int64(ni)+20, cfg.Compression)
			disk += sdisk
			codec += scodec
		}
		clusterTasks = append(clusterTasks, emr.Task{
			Name:        fmt.Sprintf("bucket-%x", b.Signature),
			Cost:        cost + diskSeconds(disk) + codec,
			MemoryBytes: mem,
			DiskBytes:   disk,
		})
	}

	// Result collection streams labels back to the blob store; like the
	// hashing step it parallelizes over input splits.
	var collect []emr.Task
	for start := 0; start < n; start += splitSize {
		size := splitSize
		if start+size > n {
			size = n - start
		}
		collect = append(collect, emr.Task{
			Name:        fmt.Sprintf("collect-%d", start/splitSize),
			Cost:        beta * float64(size),
			MemoryBytes: int64(size) * 8,
		})
	}

	return &emr.JobFlow{
		Name: "dasc",
		Steps: []emr.Step{
			{Name: "lsh-partition", Tasks: lshTasks},
			{Name: "spectral-clustering", Tasks: clusterTasks},
			{Name: "collect", Tasks: collect},
		},
	}
}
