package core

import (
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/lsh"
	"repro/internal/metrics"
)

// metricsAccuracy keeps call sites short.
func metricsAccuracy(truth, pred []int) (float64, error) {
	return metrics.Accuracy(truth, pred)
}

func mixture(t *testing.T, n, d, k int, noise float64, seed int64) *dataset.Labeled {
	t.Helper()
	l, err := dataset.Mixture(dataset.MixtureConfig{N: n, D: d, K: k, Noise: noise, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestClusterRecoversBlobs(t *testing.T) {
	l := mixture(t, 200, 16, 4, 0.02, 1)
	res, err := Cluster(l.Points, Config{K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := metrics.Accuracy(l.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("DASC accuracy = %v, want >= 0.9", acc)
	}
	if res.GramBytes >= 4*200*200 {
		t.Fatalf("approximated Gram %d not smaller than full %d", res.GramBytes, 4*200*200)
	}
	if res.SignatureBits == 0 || len(res.Buckets) == 0 {
		t.Fatalf("missing run metadata: %+v", res)
	}
}

func TestClusterLabelInvariants(t *testing.T) {
	l := mixture(t, 150, 8, 3, 0.05, 3)
	res, err := Cluster(l.Points, Config{K: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 150 {
		t.Fatalf("labels = %d", len(res.Labels))
	}
	seen := map[int]bool{}
	for _, lab := range res.Labels {
		if lab < 0 || lab >= res.Clusters {
			t.Fatalf("label %d out of [0,%d)", lab, res.Clusters)
		}
		seen[lab] = true
	}
	if len(seen) != res.Clusters {
		t.Fatalf("labels use %d of %d clusters", len(seen), res.Clusters)
	}
	// Bucket bookkeeping must cover the dataset.
	total := 0
	var gram int64
	for _, b := range res.Buckets {
		total += b.Size
		gram += b.GramBytes
	}
	if total != 150 || gram != res.GramBytes {
		t.Fatalf("bucket bookkeeping: total=%d gram=%d vs %d", total, gram, res.GramBytes)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	l := mixture(t, 20, 4, 2, 0.05, 5)
	if _, err := Cluster(l.Points, Config{K: 21}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
	if _, err := Cluster(l.Points, Config{M: 99}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("expected ErrBadConfig for M=99")
	}
	if _, err := Cluster(l.Points, Config{K: 2, M: 4, P: 7}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("expected ErrBadConfig for P > M")
	}
}

func TestClusterDefaultsFromPaperLaws(t *testing.T) {
	l := mixture(t, 1024, 8, 4, 0.05, 6)
	res, err := Cluster(l.Points, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.SignatureBits != lsh.DefaultM(1024) {
		t.Fatalf("M = %d, want %d", res.SignatureBits, lsh.DefaultM(1024))
	}
	// K defaulted to CategoryLaw(1024) = 17 across buckets; total
	// produced clusters should be in that ballpark (bucket rounding
	// shifts it slightly).
	if res.Clusters < 8 || res.Clusters > 40 {
		t.Fatalf("clusters = %d, expected near 17", res.Clusters)
	}
}

func TestClusterMergeAblation(t *testing.T) {
	l := mixture(t, 300, 16, 4, 0.08, 8)
	merged, err := Cluster(l.Points, Config{K: 4, Seed: 9, M: 6})
	if err != nil {
		t.Fatal(err)
	}
	unmerged, err := Cluster(l.Points, Config{K: 4, Seed: 9, M: 6, P: -1})
	if err != nil {
		t.Fatal(err)
	}
	if merged.MergeRadius != 1 || unmerged.MergeRadius != -1 {
		t.Fatalf("radii: %d %d", merged.MergeRadius, unmerged.MergeRadius)
	}
	if len(merged.Buckets) > len(unmerged.Buckets) {
		t.Fatalf("merging cannot increase bucket count: %d vs %d",
			len(merged.Buckets), len(unmerged.Buckets))
	}
}

func TestClusterWorkerCountInvariant(t *testing.T) {
	l := mixture(t, 120, 8, 3, 0.04, 10)
	a, err := Cluster(l.Points, Config{K: 3, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(l.Points, Config{K: 3, Seed: 11, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("worker count changed the labels")
		}
	}
}

func TestClusterSinglePointAndTinyBuckets(t *testing.T) {
	l := mixture(t, 5, 3, 2, 0.01, 12)
	res, err := Cluster(l.Points, Config{K: 2, Seed: 13, M: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 5 {
		t.Fatalf("labels = %v", res.Labels)
	}
}

func TestClusterEmpty(t *testing.T) {
	if _, err := Cluster(matrixOfSize(0, 0), Config{}); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestClusterWithAlternateFamilies(t *testing.T) {
	l := mixture(t, 150, 12, 3, 0.02, 14)
	sim, err := lsh.FitSimHash(l.Points, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := lsh.FitSpectral(l.Points, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// SimHash preserves blob locality, so accuracy stays high. Spectral
	// hashing's median thresholds deliberately balance each bit, which
	// cuts straight through clusters — it runs correctly but pays an
	// accuracy price on clustered data (exactly why the paper prefers
	// valley thresholds there; spectral hashing is for skewed data).
	for name, fam := range map[string]lsh.Family{"simhash": sim, "spectral": spec} {
		res, err := Cluster(l.Points, Config{K: 3, Seed: 2, Family: fam})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Labels) != 150 || res.Clusters < 1 {
			t.Fatalf("%s: bad result %+v", name, res)
		}
		if res.SignatureBits != 5 {
			t.Fatalf("%s: M = %d, want family bits", name, res.SignatureBits)
		}
		acc, err := metricsAccuracy(l.Labels, res.Labels)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "simhash" && acc < 0.85 {
			t.Fatalf("simhash accuracy %v", acc)
		}
	}
}

func TestBucketK(t *testing.T) {
	cases := []struct{ k, ni, n, want int }{
		{10, 50, 100, 5},
		{10, 1, 100, 1}, // floor at 1
		{10, 100, 100, 10},
		{3, 2, 100, 1},
		{100, 5, 100, 5}, // cap at ni
	}
	for _, c := range cases {
		if got := BucketK(c.k, c.ni, c.n); got != c.want {
			t.Errorf("BucketK(%d,%d,%d) = %d, want %d", c.k, c.ni, c.n, got, c.want)
		}
	}
}
