package core

import (
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/metrics"
)

func TestClusterMapReduceShippedMatchesLocal(t *testing.T) {
	l := mixture(t, 160, 10, 3, 0.03, 50)
	cfg := Config{K: 3, Seed: 51}
	direct, err := Cluster(l.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shipped, err := ClusterMapReduceShipped(l.Points, cfg, &mapreduce.Local{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	agree, err := metrics.Accuracy(direct.Labels, shipped.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if agree != 1 {
		t.Fatalf("shipped driver disagrees with local: %v", agree)
	}
	if direct.GramBytes != shipped.GramBytes {
		t.Fatalf("GramBytes %d vs %d", direct.GramBytes, shipped.GramBytes)
	}
}

func TestClusterMapReduceShippedOverTCPSameProcess(t *testing.T) {
	l := mixture(t, 120, 8, 2, 0.03, 52)
	m, err := mapreduce.NewMaster("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := mapreduce.RunWorker(m.Addr()); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	waitWorkers(t, m, 2)

	res, err := ClusterMapReduceShipped(l.Points, Config{K: 2, Seed: 53}, m)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := metrics.Accuracy(l.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("accuracy = %v", acc)
	}
	m.Close()
	wg.Wait()
}

// TestClusterMapReduceShippedAcrossProcesses runs DASC with workers in
// genuinely separate OS processes: the test re-executes its own binary
// as worker processes (the standard helper-process pattern), which —
// because the job factories carry everything through Conf and records —
// must produce the same clustering as the in-process driver.
func TestClusterMapReduceShippedAcrossProcesses(t *testing.T) {
	if os.Getenv("DASC_WORKER_HELPER") == "1" {
		// Helper mode: behave exactly like cmd/dascworker.
		if err := mapreduce.RunWorker(os.Getenv("DASC_MASTER_ADDR")); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}

	l := mixture(t, 150, 8, 3, 0.02, 54)
	cfg := Config{K: 3, Seed: 55}
	want, err := Cluster(l.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}

	m, err := mapreduce.NewMaster("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	var procs []*exec.Cmd
	for i := 0; i < 2; i++ {
		cmd := exec.Command(exe, "-test.run", "TestClusterMapReduceShippedAcrossProcesses")
		cmd.Env = append(os.Environ(),
			"DASC_WORKER_HELPER=1",
			"DASC_MASTER_ADDR="+m.Addr(),
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, cmd)
	}
	waitWorkers(t, m, 2)

	res, err := ClusterMapReduceShipped(l.Points, cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	agree, err := metrics.Accuracy(want.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if agree != 1 {
		t.Fatalf("cross-process run disagrees with local: %v", agree)
	}
	m.Close()
	for _, p := range procs {
		if err := p.Wait(); err != nil {
			t.Fatalf("worker process: %v", err)
		}
	}
}

func waitWorkers(t *testing.T, m *mapreduce.Master, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for m.ConnectedWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatal("workers did not join")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestShippedCodecs(t *testing.T) {
	v := []float64{1.5, -2.25, 0, 1e-9}
	back, err := decodeVector(encodeVector(v))
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if v[i] != back[i] {
			t.Fatalf("vector round trip: %v -> %v", v, back)
		}
	}
	if _, err := decodeVector([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected misaligned error")
	}
	if _, err := decodeVector(nil); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestShippedJobFactoriesValidateConf(t *testing.T) {
	if _, err := newShippedLSHJob([]byte("garbage")); err == nil {
		t.Fatal("expected gob error")
	}
	blob, err := gobEncode(lshConf{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newShippedLSHJob(blob); err == nil {
		t.Fatal("expected empty-conf error")
	}
	if _, err := newShippedClusterJob([]byte("garbage")); err == nil {
		t.Fatal("expected gob error")
	}
	blob, err = gobEncode(clusterConf{N: 0, K: 1, Sigma: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newShippedClusterJob(blob); err == nil {
		t.Fatal("expected invalid-conf error")
	}
}
