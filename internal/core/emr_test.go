package core

import (
	"testing"

	"repro/internal/emr"
	"repro/internal/lsh"
)

func TestEMRFlowStructure(t *testing.T) {
	l := mixture(t, 512, 16, 4, 0.05, 30)
	flow, part, err := EMRFlow(l.Points, Config{K: 4, Seed: 31}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(flow.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(flow.Steps))
	}
	if flow.Steps[0].Name != "lsh-partition" || flow.Steps[1].Name != "spectral-clustering" {
		t.Fatalf("step names: %v %v", flow.Steps[0].Name, flow.Steps[1].Name)
	}
	if len(flow.Steps[1].Tasks) != part.NumBuckets() {
		t.Fatalf("cluster tasks %d != buckets %d", len(flow.Steps[1].Tasks), part.NumBuckets())
	}
	// Bucket memory must equal the 4*Ni^2 accounting.
	var mem int64
	for _, task := range flow.Steps[1].Tasks {
		mem += task.MemoryBytes
	}
	if mem != 4*part.ApproxGramEntries() {
		t.Fatalf("flow memory %d != 4*sumNi2 %d", mem, 4*part.ApproxGramEntries())
	}
}

func TestEMRFlowElasticityShape(t *testing.T) {
	// Table 3: doubling the node count roughly halves the total time
	// while memory stays constant. Linear scaling needs many more
	// bucket tasks than slots, so build the flow from a synthetic
	// 600-bucket partition (the real Wikipedia runs have thousands).
	part := syntheticPartition(600, 200)
	n := 0
	for _, s := range part.Sizes() {
		n += s
	}
	flow := BuildFlow(part, Config{K: 64, Workers: 1}, n, 16, 50e-6)
	var prev *emr.FlowReport
	for _, nodes := range []int{16, 32, 64} {
		c, err := emr.NewCluster(nodes)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.RunJobFlow(flow)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			// The spectral-clustering step dominates the paper's runs
			// and must scale near-linearly; fixed-cost steps (single
			// collect task) keep TotalTime slightly sublinear.
			speedup := prev.Steps[1].Makespan / rep.Steps[1].Makespan
			if speedup < 1.6 || speedup > 2.4 {
				t.Fatalf("%d nodes: clustering speedup %v, want ~2", nodes, speedup)
			}
			if rep.TotalMemory != prev.TotalMemory {
				t.Fatalf("memory changed with node count: %d vs %d",
					rep.TotalMemory, prev.TotalMemory)
			}
		}
		prev = rep
	}
}

// syntheticPartition builds a partition of `buckets` buckets whose
// sizes jitter around meanSize, mimicking a large Wikipedia run.
func syntheticPartition(buckets, meanSize int) *lsh.Partition {
	p := &lsh.Partition{}
	idx := 0
	for b := 0; b < buckets; b++ {
		size := meanSize/2 + (b*7)%meanSize // deterministic skew
		if size < 1 {
			size = 1
		}
		indices := make([]int, size)
		for i := range indices {
			indices[i] = idx
			idx++
		}
		p.Buckets = append(p.Buckets, lsh.Bucket{Signature: uint64(b), Indices: indices})
	}
	return p
}

// TestEMRFlowDiskCosting pins the out-of-core cost model: spill budgets
// add 2x the framed record bytes per stage-1 task, sharded mode trades
// stage-1 memory for shard-read disk traffic, and the scheduler surfaces
// the aggregate through FlowReport.TotalDiskBytes.
func TestEMRFlowDiskCosting(t *testing.T) {
	part := syntheticPartition(40, 150)
	n := 0
	for _, s := range part.Sizes() {
		n += s
	}
	const dims = 16
	base := BuildFlow(part, Config{K: 8, Workers: 1}, n, dims, 50e-6)
	spilled := BuildFlow(part, Config{K: 8, Workers: 1, SpillBytes: 1 << 20}, n, dims, 50e-6)
	sharded := BuildFlowSharded(part, Config{K: 8, Workers: 1, SpillBytes: 1 << 20}, n, dims, 50e-6)

	sum := func(f *emr.JobFlow, step int, get func(emr.Task) int64) int64 {
		var total int64
		for _, task := range f.Steps[step].Tasks {
			total += get(task)
		}
		return total
	}
	disk := func(task emr.Task) int64 { return task.DiskBytes }
	mem := func(task emr.Task) int64 { return task.MemoryBytes }

	for step := 0; step < 2; step++ {
		if got := sum(base, step, disk); got != 0 {
			t.Fatalf("in-memory flow step %d models %d disk bytes", step, got)
		}
		if got := sum(spilled, step, disk); got <= 0 {
			t.Fatalf("spilled flow step %d models no disk", step)
		}
	}
	// Spill bills exactly write + re-read of every framed stage-1 record.
	if got, want := sum(spilled, 0, disk), int64(2*spillRecordBytes*n); got != want {
		t.Fatalf("stage-1 spill disk = %d, want %d", got, want)
	}
	// Sharded mode adds the 8*dims*N input read on top of the spill...
	if got, want := sum(sharded, 0, disk), int64(2*spillRecordBytes*n)+int64(8*dims*n); got != want {
		t.Fatalf("sharded stage-1 disk = %d, want %d", got, want)
	}
	// ...and shrinks stage-1 memory from resident splits to the
	// streaming working set.
	if got, lim := sum(sharded, 0, mem), sum(base, 0, mem); got >= lim {
		t.Fatalf("sharded stage-1 memory %d not below resident %d", got, lim)
	}
	// Bucket hydration charges disk and memory for the demand-read rows.
	if got, want := sum(sharded, 1, disk)-sum(spilled, 1, disk), int64(8*dims*n); got != want {
		t.Fatalf("bucket hydration disk = %d, want %d", got, want)
	}
	// Disk time is folded into task cost at EMRDiskBandwidth.
	for i, task := range spilled.Steps[0].Tasks {
		want := base.Steps[0].Tasks[i].Cost + diskSeconds(task.DiskBytes)
		if task.Cost != want {
			t.Fatalf("task %d cost %v, want %v", i, task.Cost, want)
		}
	}

	c, err := emr.NewCluster(8)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.RunJobFlow(sharded)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for step := range sharded.Steps {
		want += sum(sharded, step, disk)
	}
	if rep.TotalDiskBytes != want {
		t.Fatalf("report disk %d, want %d", rep.TotalDiskBytes, want)
	}
	repBase, err := c.RunJobFlow(base)
	if err != nil {
		t.Fatal(err)
	}
	if repBase.TotalDiskBytes != 0 {
		t.Fatalf("in-memory report disk = %d", repBase.TotalDiskBytes)
	}
}

func TestEMRFlowValidation(t *testing.T) {
	l := mixture(t, 16, 4, 2, 0.05, 34)
	if _, _, err := EMRFlow(l.Points, Config{K: 99}, 0); err == nil {
		t.Fatal("expected config error")
	}
}
