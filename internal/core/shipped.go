package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"strconv"
	"time"

	"repro/internal/embed"
	"repro/internal/kernel"
	"repro/internal/kmeans"
	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/spectral"
)

// This file provides the closure-free MapReduce formulation of DASC:
// the jobs carry no pointers into the driver's memory, so TCP workers
// in *separate OS processes* can execute them — the full Hadoop
// deployment model. The hash parameters and clustering configuration
// travel as the job Conf (Hadoop's JobConf analogue) and the vectors
// travel inside the records (HDFS's input splits analogue).
//
// The factories are registered at package init, so any process that
// imports this package (e.g. cmd/dascworker) can serve the jobs.

// Names of the factory-registered jobs.
const (
	ShippedLSHJobName     = "dasc/shipped-lsh"
	ShippedClusterJobName = "dasc/shipped-cluster"
)

func init() {
	mapreduce.RegisterFactory(ShippedLSHJobName, newShippedLSHJob)
	mapreduce.RegisterFactory(ShippedClusterJobName, newShippedClusterJob)
}

// lshTable is one ensemble table's fitted hash parameters.
type lshTable struct {
	Dims       []int
	Thresholds []float64
}

// lshConf is the stage-1 configuration: every table's fitted hash
// parameters, so a remote worker can compute the full signature set.
type lshConf struct {
	Tables []lshTable
}

// clusterConf is the stage-2 configuration. SparseCutoff and Epsilon
// travel with the job so remote workers apply the driver's solve-engine
// policy; zero values reproduce the dense path exactly. EmbedDim > 0
// switches the stage-2 record format to kind-byte framing (see
// mapreduce.EmbedBucketKind): buckets the embed policy claims arrive as
// already-embedded d′-dim rows and the reducer runs only the k-means
// half, never refitting the feature map.
type clusterConf struct {
	N            int
	K            int
	Sigma        float64
	Seed         int64
	SparseCutoff int
	Epsilon      float64
	EmbedDim     int
	EmbedCutoff  int
	// Compression mirrors Config.Compression: stage-2 index lists,
	// solver-stats records, and embedded bucket records use their
	// compact encodings, selected by this flag on both sides (never
	// sniffed from the bytes). gob omits the zero value, so conf blobs
	// with it off are byte-identical to prior releases.
	Compression bool
}

// bucketPayload is one stage-2 record: a bucket's points shipped by
// value.
type bucketPayload struct {
	Indices []int32
	Dims    int
	Vectors []float64 // len(Indices) x Dims, row-major
}

func gobEncode(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// newShippedLSHJob rebuilds stage 1 from its configuration: the mapper
// decodes each record's vector, hashes it with every table's shipped
// thresholds, and emits one (table:signature, index) record per table;
// the reducer is the identity grouping.
func newShippedLSHJob(conf []byte) (*mapreduce.Job, error) {
	var c lshConf
	if err := gobDecode(conf, &c); err != nil {
		return nil, fmt.Errorf("core: lsh conf: %w", err)
	}
	if len(c.Tables) == 0 {
		return nil, fmt.Errorf("core: lsh conf has no tables")
	}
	for t, tab := range c.Tables {
		if len(tab.Dims) != len(tab.Thresholds) || len(tab.Dims) == 0 {
			return nil, fmt.Errorf("core: lsh conf table %d has %d dims, %d thresholds",
				t, len(tab.Dims), len(tab.Thresholds))
		}
	}
	return &mapreduce.Job{
		NumReducers: 4,
		Map: func(key string, value []byte, emit mapreduce.Emit) error {
			idx, err := strconv.Atoi(key)
			if err != nil {
				return fmt.Errorf("bad point index %q: %w", key, err)
			}
			vec, err := decodeVector(value)
			if err != nil {
				return err
			}
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], uint32(idx))
			for t, tab := range c.Tables {
				var sig uint64
				for i, dim := range tab.Dims {
					if dim < 0 || dim >= len(vec) {
						return fmt.Errorf("hash dimension %d outside vector of %d", dim, len(vec))
					}
					if vec[dim] > tab.Thresholds[i] {
						sig |= 1 << uint(i)
					}
				}
				emit(encodeSigKey(t, sig), buf[:])
			}
			return nil
		},
		Reduce: func(key string, values [][]byte, emit mapreduce.Emit) error {
			for _, v := range values {
				emit(key, v)
			}
			return nil
		},
	}, nil
}

// newShippedClusterJob rebuilds stage 2: each reduce value is a bucket
// payload; the reducer reconstructs the bucket matrix, runs the
// per-bucket pipeline, and emits per-point (index, localLabel, k).
func newShippedClusterJob(conf []byte) (*mapreduce.Job, error) {
	var c clusterConf
	if err := gobDecode(conf, &c); err != nil {
		return nil, fmt.Errorf("core: cluster conf: %w", err)
	}
	if c.N < 1 || c.K < 1 || c.Sigma <= 0 || c.EmbedDim < 0 ||
		(c.EmbedDim > 0 && c.EmbedCutoff < 1) {
		return nil, fmt.Errorf("core: cluster conf %+v invalid", c)
	}
	return &mapreduce.Job{
		NumReducers: 4,
		Map: func(key string, value []byte, emit mapreduce.Emit) error {
			emit(key, value)
			return nil
		},
		Reduce: func(key string, values [][]byte, emit mapreduce.Emit) error {
			for _, v := range values {
				var payload bucketPayload
				if c.EmbedDim > 0 {
					// Embed mode frames every stage-2 value with a kind byte
					// (bare gob can begin with any byte, so the discriminator
					// is only trustworthy when the conf promises it exists).
					if len(v) == 0 {
						return fmt.Errorf("empty stage-2 record")
					}
					switch v[0] {
					case mapreduce.EmbedBucketKind, mapreduce.PackedEmbedBucketKind:
						sol, indices, err := clusterEmbeddedShippedBucket(v, c)
						if err != nil {
							return err
						}
						for pos, idx := range indices {
							emit(key, encodeLabel(int(idx), sol.Labels[pos], sol.K))
						}
						emit(key, encodeBucketStatsConf(sol, c.Compression))
						continue
					case mapreduce.RawBucketKind:
						if err := gobDecode(v[1:], &payload); err != nil {
							return fmt.Errorf("bucket payload: %w", err)
						}
					default:
						return fmt.Errorf("stage-2 record kind %q", v[0])
					}
				} else if err := gobDecode(v, &payload); err != nil {
					return fmt.Errorf("bucket payload: %w", err)
				}
				ni := len(payload.Indices)
				if ni == 0 || payload.Dims < 1 || len(payload.Vectors) != ni*payload.Dims {
					return fmt.Errorf("bucket payload shape %d x %d vs %d values",
						ni, payload.Dims, len(payload.Vectors))
				}
				pts, err := matrix.NewDenseData(ni, payload.Dims, payload.Vectors)
				if err != nil {
					return err
				}
				sol, err := clusterShippedBucket(pts, c, payload.Indices)
				if err != nil {
					return err
				}
				for pos, idx := range payload.Indices {
					emit(key, encodeLabel(int(idx), sol.Labels[pos], sol.K))
				}
				emit(key, encodeBucketStatsConf(sol, c.Compression))
			}
			return nil
		},
	}, nil
}

// clusterEmbeddedShippedBucket is the reduce half of the embedded
// solve: decode the d′-dim rows the driver embedded map-side and run
// k-means on them, reporting the same stats the local engine's embedded
// path does. The feature map never travels — only its output — so the
// worker needs no kernel, no Gram scratch, and no eigensolver.
func clusterEmbeddedShippedBucket(record []byte, c clusterConf) (BucketSolution, []int32, error) {
	indices, dim, rows, err := mapreduce.ParseAnyEmbedBucket(record)
	if err != nil {
		return BucketSolution{}, nil, err
	}
	ni := len(indices)
	ki := BucketK(c.K, ni, c.N)
	if ki <= 1 || ki >= ni {
		// The driver only ships embedded records for 1 < ki < ni; anything
		// else means the record and the configuration disagree.
		return BucketSolution{}, nil, fmt.Errorf("embedded bucket of %d points plans %d clusters", ni, ki)
	}
	emb, err := matrix.NewDenseData(ni, dim, rows)
	if err != nil {
		return BucketSolution{}, nil, err
	}
	start := time.Now()
	res, err := spectral.ClusterEmbeddedRows(emb, spectral.Config{K: ki, Seed: c.Seed + int64(indices[0])})
	if err != nil {
		return BucketSolution{}, nil, fmt.Errorf("embedded bucket: %w", err)
	}
	return BucketSolution{
		Labels: res.Labels, K: ki,
		Solver:     spectral.SolverEmbedded,
		NNZ:        int64(ni) * int64(dim),
		Fill:       float64(dim) / float64(ni),
		SolveNanos: time.Since(start).Nanoseconds(),
		GramBytes:  embed.Bytes(ni, dim),
	}, indices, nil
}

// clusterShippedBucket mirrors clusterOneBucket on a shipped bucket,
// routing through the same solve engine so the worker applies the
// driver's sparse policy and reports the same per-bucket stats.
func clusterShippedBucket(pts *matrix.Dense, c clusterConf, indices []int32) (BucketSolution, error) {
	ni := pts.Rows()
	ki := BucketK(c.K, ni, c.N)
	if ni == 1 || ki == 1 {
		return BucketSolution{Labels: make([]int, ni), K: 1, Solver: SolverTrivial}, nil
	}
	if ki == ni {
		labels := make([]int, ni)
		for i := range labels {
			labels[i] = i
		}
		return BucketSolution{Labels: labels, K: ni, Solver: SolverTrivial}, nil
	}
	all := make([]int, ni)
	for i := range all {
		all[i] = i
	}
	ecfg := spectral.EngineConfig{
		K:            ki,
		Seed:         c.Seed + int64(indices[0]),
		SparseCutoff: c.SparseCutoff,
		Epsilon:      c.Epsilon,
	}
	var scratch []float64
	res, stats, err := spectral.ClusterBucket(pts, all, kernel.NewGaussian(c.Sigma), ecfg, &scratch)
	if err == nil {
		return BucketSolution{
			Labels: res.Labels, K: ki,
			Solver: stats.Solver, NNZ: stats.NNZ, Fill: stats.Fill,
			SolveNanos: stats.Nanos, GramBytes: stats.GramBytes,
		}, nil
	}
	km, kerr := kmeans.Run(pts, kmeans.Config{K: ki, Seed: c.Seed})
	if kerr != nil {
		return BucketSolution{}, fmt.Errorf("spectral (%v) and kmeans fallback (%v) both failed", err, kerr)
	}
	return BucketSolution{
		Labels: km.Labels, K: ki,
		Solver: SolverKMeansFallback, NNZ: stats.NNZ, Fill: stats.Fill,
		SolveNanos: stats.Nanos, GramBytes: stats.GramBytes,
	}, nil
}

// encodeVector packs a float64 vector little-endian.
func encodeVector(v []float64) []byte {
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(x))
	}
	return buf
}

func decodeVector(buf []byte) ([]float64, error) {
	if len(buf) == 0 || len(buf)%8 != 0 {
		return nil, fmt.Errorf("core: vector payload length %d", len(buf))
	}
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return out, nil
}

// ClusterMapReduceShipped runs DASC's two MapReduce stages with all
// data shipped through the records, so the executor's workers may live
// in other OS processes (start them with cmd/dascworker). Semantically
// identical to ClusterMapReduce.
func ClusterMapReduceShipped(points *matrix.Dense, cfg Config, exec mapreduce.Executor) (*Result, error) {
	return ClusterMapReduceShippedContext(context.Background(), points, cfg, exec)
}

// ClusterMapReduceShippedContext is ClusterMapReduceShipped with
// cancellation: the context is threaded into the executor, so the TCP
// Master aborts in-flight remote tasks cooperatively.
func ClusterMapReduceShippedContext(ctx context.Context, points *matrix.Dense, cfg Config, exec mapreduce.Executor) (*Result, error) {
	return RunPipeline(ctx, points, cfg, &shippedRunner{exec: exec})
}

// shippedRunner is the cross-process MapReduce backend: every stage's
// configuration and data travel through the job Conf and record values,
// never through closures.
type shippedRunner struct {
	exec mapreduce.Executor
	ctr  mapreduce.Counters
}

func (*shippedRunner) Name() string      { return "mapreduce-shipped" }
func (*shippedRunner) NeedsHasher() bool { return true }

// MapReduceCounters reports the counters accumulated across both
// stages; RunPipeline copies them onto the Result.
func (r *shippedRunner) MapReduceCounters() *mapreduce.Counters { return &r.ctr }

func (r *shippedRunner) Signatures(ctx context.Context, p *Plan) (*lsh.SignatureSet, error) {
	n := p.Points.Rows()
	hashers, err := p.Hashers()
	if err != nil {
		return nil, err
	}
	conf := lshConf{Tables: make([]lshTable, len(hashers))}
	for t, h := range hashers {
		conf.Tables[t] = lshTable{Dims: h.Dimensions(), Thresholds: h.Thresholds()}
	}
	lshBlob, err := gobEncode(conf)
	if err != nil {
		return nil, err
	}
	lshJob, err := newShippedLSHJob(lshBlob)
	if err != nil {
		return nil, err
	}
	lshJob.Name = ShippedLSHJobName
	lshJob.Conf = lshBlob
	lshJob.SpillBytes = p.Cfg.SpillBytes
	lshJob.Compress = p.Cfg.Compression
	input := make([]mapreduce.Pair, n)
	for i := 0; i < n; i++ {
		input[i] = mapreduce.Pair{Key: strconv.Itoa(i), Value: encodeVector(p.Points.Row(i))}
	}
	sigPairs, ctr, err := mapreduce.RunWithContext(ctx, r.exec, lshJob, input)
	if err != nil {
		return nil, fmt.Errorf("core: lsh stage: %w", err)
	}
	r.ctr.Add(ctr)
	return signaturesFromPairs(sigPairs, n, len(hashers))
}

func (r *shippedRunner) Solve(ctx context.Context, p *Plan, part *lsh.Partition) ([]BucketSolution, error) {
	n := p.Points.Rows()
	clusterBlob, err := gobEncode(clusterConf{
		N: n, K: p.Cfg.K, Sigma: p.Sigma, Seed: p.Cfg.Seed,
		SparseCutoff: p.Cfg.SparseCutoff, Epsilon: p.Cfg.Epsilon,
		EmbedDim: p.Cfg.EmbedDim, EmbedCutoff: p.Cfg.EmbedCutoff,
		Compression: p.Cfg.Compression,
	})
	if err != nil {
		return nil, err
	}
	clusterJob, err := newShippedClusterJob(clusterBlob)
	if err != nil {
		return nil, err
	}
	clusterJob.Name = ShippedClusterJobName
	clusterJob.Conf = clusterBlob
	clusterJob.SpillBytes = p.Cfg.SpillBytes
	clusterJob.Compress = p.Cfg.Compression
	stage2 := make([]mapreduce.Pair, len(part.Buckets))
	d := p.Points.Cols()
	embedOn := p.Cfg.EmbedDim > 0 && p.Embedder != nil
	var embScratch []float64
	for bi, b := range part.Buckets {
		var value []byte
		if embedOn && willEmbed(p.Cfg, len(b.Indices), n) {
			value, err = r.encodeEmbeddedBucket(p, b.Indices, &embScratch)
			if err != nil {
				return nil, fmt.Errorf("core: embed bucket %x: %w", b.Signature, err)
			}
		} else {
			payload := bucketPayload{
				Indices: make([]int32, len(b.Indices)),
				Dims:    d,
				Vectors: make([]float64, 0, len(b.Indices)*d),
			}
			for i, idx := range b.Indices {
				payload.Indices[i] = int32(idx)
				payload.Vectors = append(payload.Vectors, p.Points.Row(idx)...)
			}
			blob, err := gobEncode(payload)
			if err != nil {
				return nil, err
			}
			if embedOn {
				// Embed mode frames every record; legacy mode ships bare gob
				// so EmbedDim=0 runs stay byte-identical to prior releases.
				value = append([]byte{mapreduce.RawBucketKind}, blob...)
			} else {
				value = blob
			}
		}
		stage2[bi] = mapreduce.Pair{Key: fmt.Sprintf("%016x", b.Signature), Value: value}
	}
	labelPairs, ctr, err := mapreduce.RunWithContext(ctx, r.exec, clusterJob, stage2)
	if err != nil {
		return nil, fmt.Errorf("core: cluster stage: %w", err)
	}
	r.ctr.Add(ctr)
	return solutionsFromLabelPairs(part, labelPairs, n, p.Cfg.Compression)
}

// encodeEmbeddedBucket runs the map-side half of the embedded solve:
// push one bucket's rows through the plan's feature map and encode the
// wire record, metering transform time and record bytes into the
// runner's counters. The d′-dim record replaces ni·d raw coordinates
// with ni·d′ embedded ones — the shuffle-byte reduction the
// embed-and-conquer deployment exists for.
func (r *shippedRunner) encodeEmbeddedBucket(p *Plan, indices []int, scratch *[]float64) ([]byte, error) {
	ni := len(indices)
	dim := p.Embedder.Dim()
	if cap(*scratch) < ni*dim {
		*scratch = make([]float64, ni*dim)
	}
	rows := (*scratch)[:ni*dim]
	start := time.Now()
	err := p.Embedder.TransformInto(rows, p.Points, indices)
	r.ctr.EmbedNanos += time.Since(start).Nanoseconds()
	if err != nil {
		return nil, err
	}
	idx32 := make([]int32, ni)
	for i, v := range indices {
		idx32[i] = int32(v)
	}
	dst := make([]byte, 0, 1+2*binary.MaxVarintLen64+ni*(4+8*dim))
	var rec []byte
	if p.Cfg.Compression {
		rec = mapreduce.AppendPackedEmbedBucket(dst, idx32, dim, rows)
	} else {
		rec = mapreduce.AppendEmbedBucket(dst, idx32, dim, rows)
	}
	r.ctr.EmbedBytes += int64(len(rec))
	return rec, nil
}
