package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"strconv"

	"repro/internal/embed"
	"repro/internal/kernel"
	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
)

// ClusterMapReduce runs DASC as the paper's two MapReduce stages (§3.3)
// on the given executor:
//
//	stage 1 (Algorithm 1): map each (index, vector) record to a
//	  (signature, index) pair; the grouped reduce output is the raw
//	  signature partition,
//	stage 2 (Algorithm 2): after the driver merges near-duplicate
//	  signatures, each reducer computes its bucket's sub-similarity
//	  matrix and runs spectral clustering, emitting per-point labels.
//
// The jobs are registered under names derived from jobPrefix so that
// TCP workers in the same process can execute them (the points matrix
// travels by closure, standing in for HDFS-distributed input splits).
func ClusterMapReduce(points *matrix.Dense, cfg Config, exec mapreduce.Executor, jobPrefix string) (*Result, error) {
	return ClusterMapReduceContext(context.Background(), points, cfg, exec, jobPrefix)
}

// ClusterMapReduceContext is ClusterMapReduce with cancellation: the
// context is threaded into the executor, so executors implementing
// mapreduce.ContextExecutor (Local and the TCP Master) abort in-flight
// map and reduce work cooperatively.
func ClusterMapReduceContext(ctx context.Context, points *matrix.Dense, cfg Config, exec mapreduce.Executor, jobPrefix string) (*Result, error) {
	return RunPipeline(ctx, points, cfg, &mapReduceRunner{exec: exec, prefix: jobPrefix})
}

// mapReduceRunner is the closure-carrying MapReduce backend: jobs
// capture the points matrix, so executor workers must share the
// driver's address space (goroutine TCP workers or the Local pool).
type mapReduceRunner struct {
	exec   mapreduce.Executor
	prefix string
	ctr    mapreduce.Counters
}

func (*mapReduceRunner) Name() string      { return "mapreduce" }
func (*mapReduceRunner) NeedsHasher() bool { return true }

// MapReduceCounters reports the counters accumulated across both
// stages; RunPipeline copies them onto the Result.
func (r *mapReduceRunner) MapReduceCounters() *mapreduce.Counters { return &r.ctr }

func (r *mapReduceRunner) Signatures(ctx context.Context, p *Plan) (*lsh.SignatureSet, error) {
	n := p.Points.Rows()
	hashers, err := p.Hashers()
	if err != nil {
		return nil, err
	}
	lshJob := LSHJob(r.prefix, p.Points, hashers)
	lshJob.SpillBytes = p.Cfg.SpillBytes
	lshJob.Compress = p.Cfg.Compression
	input := make([]mapreduce.Pair, n)
	for i := 0; i < n; i++ {
		input[i] = mapreduce.Pair{Key: strconv.Itoa(i)}
	}
	sigPairs, ctr, err := mapreduce.RunWithContext(ctx, r.exec, lshJob, input)
	if err != nil {
		return nil, fmt.Errorf("core: lsh stage: %w", err)
	}
	r.ctr.Add(ctr)
	return signaturesFromPairs(sigPairs, n, len(hashers))
}

func (r *mapReduceRunner) Solve(ctx context.Context, p *Plan, part *lsh.Partition) ([]BucketSolution, error) {
	clusterJob := ClusterJob(r.prefix, p.Points, p.Cfg, p.Sigma, p.Embedder)
	clusterJob.SpillBytes = p.Cfg.SpillBytes
	clusterJob.Compress = p.Cfg.Compression
	stage2Input := make([]mapreduce.Pair, len(part.Buckets))
	for bi, b := range part.Buckets {
		stage2Input[bi] = mapreduce.Pair{
			Key:   fmt.Sprintf("%016x", b.Signature),
			Value: encodeIndicesConf(b.Indices, p.Cfg.Compression),
		}
	}
	labelPairs, ctr, err := mapreduce.RunWithContext(ctx, r.exec, clusterJob, stage2Input)
	if err != nil {
		return nil, fmt.Errorf("core: cluster stage: %w", err)
	}
	r.ctr.Add(ctr)
	return solutionsFromLabelPairs(part, labelPairs, p.Points.Rows(), p.Cfg.Compression)
}

// encodeSigKey formats a stage-1 record key as "<table>:<signature>"
// with fixed-width hex fields, so the shuffle groups per (table,
// signature) and keys sort in (table, signature) order.
func encodeSigKey(table int, sig uint64) string {
	return fmt.Sprintf("%02x:%016x", table, sig)
}

// decodeSigKey is the inverse of encodeSigKey.
func decodeSigKey(key string) (table int, sig uint64, err error) {
	if len(key) != 19 || key[2] != ':' {
		return 0, 0, fmt.Errorf("core: bad signature key %q", key)
	}
	t, err := strconv.ParseUint(key[:2], 16, 8)
	if err != nil {
		return 0, 0, fmt.Errorf("core: bad table in key %q: %w", key, err)
	}
	sig, err = strconv.ParseUint(key[3:], 16, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("core: bad signature in key %q: %w", key, err)
	}
	return int(t), sig, nil
}

// signaturesFromPairs reassembles the per-point per-table signature set
// from stage-1 output records, shared by both MapReduce runners.
func signaturesFromPairs(sigPairs []mapreduce.Pair, n, tables int) (*lsh.SignatureSet, error) {
	sigs := lsh.NewSignatureSet(tables, n)
	for _, p := range sigPairs {
		t, sig, err := decodeSigKey(p.Key)
		if err != nil {
			return nil, err
		}
		if t >= tables {
			return nil, fmt.Errorf("core: table %d out of range (have %d)", t, tables)
		}
		idx := int(binary.LittleEndian.Uint32(p.Value))
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("core: index %d out of range", idx)
		}
		sigs.Tables[t][idx] = sig
	}
	return sigs, nil
}

// solutionsFromLabelPairs converts stage-2 output records back into
// per-bucket solutions aligned with the partition — the inverse of the
// reducers' emission, shared by both MapReduce runners. Two record
// kinds share the stream, both keyed by the bucket signature: 12-byte
// per-point (pointIndex, localLabel, k) triples and the per-bucket
// solver stats records. In legacy mode (packed false) stats are the
// fixed 32-byte-plus-solver layout and the kinds are length-
// distinguished; in packed mode stats carry the 'S' marker and are at
// least 13 bytes by construction, so a 12-byte record is always a
// label. The shared assembly path then offsets the solutions exactly
// like every other runner's.
func solutionsFromLabelPairs(part *lsh.Partition, pairs []mapreduce.Pair, n int, packed bool) ([]BucketSolution, error) {
	type slot struct{ bucket, pos int }
	where := make(map[int]slot, n)
	sigOf := make(map[uint64]int, len(part.Buckets))
	sols := make([]BucketSolution, len(part.Buckets))
	for bi, b := range part.Buckets {
		sols[bi].Labels = make([]int, len(b.Indices))
		sigOf[b.Signature] = bi
		for pi, idx := range b.Indices {
			where[idx] = slot{bi, pi}
		}
	}
	isStats := func(v []byte) bool {
		if packed {
			return len(v) != 12 && len(v) > 0 && v[0] == packedStatsKind
		}
		return len(v) >= bucketStatsLen
	}
	for _, p := range pairs {
		if isStats(p.Value) {
			sig, err := strconv.ParseUint(p.Key, 16, 64)
			if err != nil {
				return nil, fmt.Errorf("core: bad stats key %q: %w", p.Key, err)
			}
			bi, ok := sigOf[sig]
			if !ok {
				return nil, fmt.Errorf("core: stats for unknown bucket %x", sig)
			}
			if packed {
				if err := decodePackedBucketStats(p.Value, &sols[bi]); err != nil {
					return nil, err
				}
			} else {
				decodeBucketStats(p.Value, &sols[bi])
			}
			continue
		}
		if len(p.Value) != 12 {
			return nil, fmt.Errorf("core: label payload length %d", len(p.Value))
		}
		idx, local, k := decodeLabel(p.Value)
		s, ok := where[idx]
		if !ok {
			return nil, fmt.Errorf("core: label for out-of-range point %d", idx)
		}
		sols[s.bucket].Labels[s.pos] = local
		sols[s.bucket].K = k
	}
	return sols, nil
}

// bucketStatsLen is the fixed prefix of a stats record: NNZ, Fill bits,
// SolveNanos, GramBytes as little-endian uint64s, followed by the
// solver name. Always longer than the 12-byte label records, so record
// kinds are length-distinguished.
const bucketStatsLen = 32

// encodeBucketStats packs a solution's solver accounting into one
// stage-2 output record.
func encodeBucketStats(s BucketSolution) []byte {
	buf := make([]byte, bucketStatsLen+len(s.Solver))
	binary.LittleEndian.PutUint64(buf[0:], uint64(s.NNZ))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(s.Fill))
	binary.LittleEndian.PutUint64(buf[16:], uint64(s.SolveNanos))
	binary.LittleEndian.PutUint64(buf[24:], uint64(s.GramBytes))
	copy(buf[bucketStatsLen:], s.Solver)
	return buf
}

// decodeBucketStats unpacks a stats record into the solution's
// accounting fields, leaving Labels and K untouched.
func decodeBucketStats(buf []byte, s *BucketSolution) {
	s.NNZ = int64(binary.LittleEndian.Uint64(buf[0:]))
	s.Fill = math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
	s.SolveNanos = int64(binary.LittleEndian.Uint64(buf[16:]))
	s.GramBytes = int64(binary.LittleEndian.Uint64(buf[24:]))
	s.Solver = string(buf[bucketStatsLen:])
}

// packedStatsKind opens a compact stats record in Compression mode:
// 'S', a zero version byte, uvarint NNZ, 8-byte LE Fill bits, uvarint
// SolveNanos, uvarint GramBytes, then the solver name. The two fixed
// leading bytes plus the 8-byte float keep every packed stats record
// at least 13 bytes, so it can never collide with a 12-byte label.
const packedStatsKind = 'S'

// encodeBucketStatsConf packs a solution's solver accounting in the
// legacy fixed layout, or the compact varint layout when the job runs
// with Config.Compression.
func encodeBucketStatsConf(s BucketSolution, packed bool) []byte {
	if !packed {
		return encodeBucketStats(s)
	}
	buf := make([]byte, 0, 2+3*binary.MaxVarintLen64+8+len(s.Solver))
	buf = append(buf, packedStatsKind, 0)
	buf = binary.AppendUvarint(buf, uint64(s.NNZ))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.Fill))
	buf = binary.AppendUvarint(buf, uint64(s.SolveNanos))
	buf = binary.AppendUvarint(buf, uint64(s.GramBytes))
	return append(buf, s.Solver...)
}

// decodePackedBucketStats is the inverse of the packed arm of
// encodeBucketStatsConf.
func decodePackedBucketStats(buf []byte, s *BucketSolution) error {
	if len(buf) < 2 || buf[0] != packedStatsKind || buf[1] != 0 {
		return fmt.Errorf("core: bad packed stats record")
	}
	rest := buf[2:]
	nnz, n := binary.Uvarint(rest)
	if n <= 0 || len(rest[n:]) < 8 {
		return fmt.Errorf("core: truncated packed stats record")
	}
	rest = rest[n:]
	fill := math.Float64frombits(binary.LittleEndian.Uint64(rest))
	rest = rest[8:]
	nanos, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("core: truncated packed stats record")
	}
	rest = rest[n:]
	gram, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("core: truncated packed stats record")
	}
	s.NNZ = int64(nnz)
	s.Fill = fill
	s.SolveNanos = int64(nanos)
	s.GramBytes = int64(gram)
	s.Solver = string(rest[n:])
	return nil
}

// LSHJob builds the stage-1 MapReduce job (Algorithm 1, extended to the
// multi-table ensemble): the mapper hashes its input vector once per
// table and emits one (table:signature, index) record per table; the
// reducer passes records through, so the executor's shuffle performs
// the per-table signature grouping.
func LSHJob(prefix string, points *matrix.Dense, hashers []*lsh.Hasher) *mapreduce.Job {
	job := &mapreduce.Job{
		Name:        prefix + "/lsh",
		NumReducers: 4,
		Map: func(key string, value []byte, emit mapreduce.Emit) error {
			idx, err := strconv.Atoi(key)
			if err != nil {
				return fmt.Errorf("bad point index %q: %w", key, err)
			}
			if idx < 0 || idx >= points.Rows() {
				return fmt.Errorf("point index %d out of range", idx)
			}
			row := points.Row(idx)
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], uint32(idx))
			for t, h := range hashers {
				emit(encodeSigKey(t, h.Signature(row)), buf[:])
			}
			return nil
		},
		Reduce: func(key string, values [][]byte, emit mapreduce.Emit) error {
			for _, v := range values {
				emit(key, v)
			}
			return nil
		},
	}
	mapreduce.Register(job)
	return job
}

// ClusterJob builds the stage-2 MapReduce job (Algorithm 2): each
// reduce key is one merged bucket; the reducer computes the bucket's
// sub-similarity matrix and runs spectral clustering — or, with embed
// mode on, embeds the bucket rows and runs k-means — emitting one
// (bucketSig, point/label/k) record per point. This closure runner
// shares the driver's memory, so only indices travel through the
// shuffle either way; the shipped runner is where map-side embedding
// shrinks the wire payloads.
func ClusterJob(prefix string, points *matrix.Dense, cfg Config, sigma float64, emb embed.Embedder) *mapreduce.Job {
	n := points.Rows()
	kf := kernel.NewGaussian(sigma)
	job := &mapreduce.Job{
		Name:        prefix + "/cluster",
		NumReducers: 4,
		Map: func(key string, value []byte, emit mapreduce.Emit) error {
			emit(key, value) // identity: buckets are already formed
			return nil
		},
		Reduce: func(key string, values [][]byte, emit mapreduce.Emit) error {
			// Reducers may run concurrently, so the sub-Gram scratch is
			// per-invocation; it is still reused across this key's values.
			var scratch []float64
			for _, v := range values {
				indices, err := decodeIndicesConf(v, cfg.Compression)
				if err != nil {
					return err
				}
				sol, err := clusterOneBucket(points, indices, cfg, n, kf, emb, &scratch)
				if err != nil {
					return err
				}
				for pi, idx := range indices {
					emit(key, encodeLabel(idx, sol.Labels[pi], sol.K))
				}
				emit(key, encodeBucketStatsConf(sol, cfg.Compression))
			}
			return nil
		},
	}
	mapreduce.Register(job)
	return job
}

// encodeIndices packs point indices as little-endian uint32s.
func encodeIndices(indices []int) []byte {
	buf := make([]byte, 4*len(indices))
	for i, idx := range indices {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(idx))
	}
	return buf
}

func decodeIndices(buf []byte) ([]int, error) {
	if len(buf)%4 != 0 {
		return nil, fmt.Errorf("core: index payload length %d", len(buf))
	}
	out := make([]int, len(buf)/4)
	for i := range out {
		v := binary.LittleEndian.Uint32(buf[i*4:])
		if v > math.MaxInt32 {
			return nil, fmt.Errorf("core: index %d overflows", v)
		}
		out[i] = int(v)
	}
	return out, nil
}

// encodeIndicesConf packs a bucket index list in the legacy 4-byte-LE
// layout, or — when the job runs with Config.Compression — as a
// uvarint count followed by zigzag-varint deltas. Bucket index lists
// are sorted ascending, so the deltas are small positive integers and
// the record shrinks toward one byte per point.
func encodeIndicesConf(indices []int, packed bool) []byte {
	if !packed {
		return encodeIndices(indices)
	}
	buf := binary.AppendUvarint(make([]byte, 0, 1+2*len(indices)), uint64(len(indices)))
	prev := 0
	for _, idx := range indices {
		buf = binary.AppendVarint(buf, int64(idx-prev))
		prev = idx
	}
	return buf
}

// decodeIndicesConf is the inverse of encodeIndicesConf. Every decoded
// index must fit int32 and be non-negative, mirroring decodeIndices.
func decodeIndicesConf(buf []byte, packed bool) ([]int, error) {
	if !packed {
		return decodeIndices(buf)
	}
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("core: bad packed index count")
	}
	rest := buf[n:]
	// Each delta occupies at least one byte, so the declared count bounds
	// the allocation before it happens.
	if count > uint64(len(rest)) {
		return nil, fmt.Errorf("core: packed index count %d exceeds payload %d", count, len(rest))
	}
	out := make([]int, count)
	prev := int64(0)
	for i := range out {
		d, n := binary.Varint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("core: truncated packed index list")
		}
		rest = rest[n:]
		prev += d
		if prev < 0 || prev > math.MaxInt32 {
			return nil, fmt.Errorf("core: packed index %d out of range", prev)
		}
		out[i] = int(prev)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes after packed index list", len(rest))
	}
	return out, nil
}

// encodeLabel packs (pointIndex, localLabel, bucketK).
func encodeLabel(idx, label, k int) []byte {
	buf := make([]byte, 12)
	binary.LittleEndian.PutUint32(buf[0:], uint32(idx))
	binary.LittleEndian.PutUint32(buf[4:], uint32(label))
	binary.LittleEndian.PutUint32(buf[8:], uint32(k))
	return buf
}

func decodeLabel(buf []byte) (idx, label, k int) {
	return int(binary.LittleEndian.Uint32(buf[0:])),
		int(binary.LittleEndian.Uint32(buf[4:])),
		int(binary.LittleEndian.Uint32(buf[8:]))
}
