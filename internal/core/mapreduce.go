package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"time"

	"repro/internal/kernel"
	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
)

// ClusterMapReduce runs DASC as the paper's two MapReduce stages (§3.3)
// on the given executor:
//
//	stage 1 (Algorithm 1): map each (index, vector) record to a
//	  (signature, index) pair; the grouped reduce output is the raw
//	  signature partition,
//	stage 2 (Algorithm 2): after the driver merges near-duplicate
//	  signatures, each reducer computes its bucket's sub-similarity
//	  matrix and runs spectral clustering, emitting per-point labels.
//
// The jobs are registered under names derived from jobPrefix so that
// TCP workers in the same process can execute them (the points matrix
// travels by closure, standing in for HDFS-distributed input splits).
func ClusterMapReduce(points *matrix.Dense, cfg Config, exec mapreduce.Executor, jobPrefix string) (*Result, error) {
	start := time.Now()
	n := points.Rows()
	cfg, radius, err := cfg.resolve(n)
	if err != nil {
		return nil, err
	}
	hasher, err := lsh.Fit(points, lsh.Config{
		M: cfg.M, Policy: cfg.Policy, Bins: cfg.Bins, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("core: lsh: %w", err)
	}
	sigma := cfg.Sigma
	if sigma <= 0 {
		sigma = kernel.MedianSigma(points, 512, cfg.Seed)
	}

	// ---- stage 1: signature generation ----
	lshJob := LSHJob(jobPrefix, points, hasher)
	input := make([]mapreduce.Pair, n)
	for i := 0; i < n; i++ {
		input[i] = mapreduce.Pair{Key: strconv.Itoa(i)}
	}
	sigPairs, _, err := exec.Run(lshJob, input)
	if err != nil {
		return nil, fmt.Errorf("core: lsh stage: %w", err)
	}

	// Reassemble per-point signatures, then merge near-duplicates on
	// the driver (the paper performs this step "before applying the
	// reducer" of stage 2).
	sigs := make([]uint64, n)
	for _, p := range sigPairs {
		sig, err := strconv.ParseUint(p.Key, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("core: bad signature %q: %w", p.Key, err)
		}
		idx := int(binary.LittleEndian.Uint32(p.Value))
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("core: index %d out of range", idx)
		}
		sigs[idx] = sig
	}
	part := lsh.PartitionSignatures(sigs, radius)

	// ---- stage 2: per-bucket similarity + spectral clustering ----
	clusterJob := ClusterJob(jobPrefix, points, cfg, sigma)
	stage2Input := make([]mapreduce.Pair, len(part.Buckets))
	for bi, b := range part.Buckets {
		stage2Input[bi] = mapreduce.Pair{
			Key:   fmt.Sprintf("%016x", b.Signature),
			Value: encodeIndices(b.Indices),
		}
	}
	labelPairs, _, err := exec.Run(clusterJob, stage2Input)
	if err != nil {
		return nil, fmt.Errorf("core: cluster stage: %w", err)
	}
	// Each reducer emitted (bucketSig, [pointIndex, localLabel, k]).
	return assembleLabels(labelPairs, n, cfg, radius, start)
}

// LSHJob builds the stage-1 MapReduce job (Algorithm 1): the mapper
// hashes its input vector and emits (signature, index); the reducer
// passes records through, so the executor's shuffle performs the
// signature grouping.
func LSHJob(prefix string, points *matrix.Dense, hasher *lsh.Hasher) *mapreduce.Job {
	job := &mapreduce.Job{
		Name:        prefix + "/lsh",
		NumReducers: 4,
		Map: func(key string, value []byte, emit mapreduce.Emit) error {
			idx, err := strconv.Atoi(key)
			if err != nil {
				return fmt.Errorf("bad point index %q: %w", key, err)
			}
			if idx < 0 || idx >= points.Rows() {
				return fmt.Errorf("point index %d out of range", idx)
			}
			sig := hasher.Signature(points.Row(idx))
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], uint32(idx))
			emit(fmt.Sprintf("%016x", sig), buf[:])
			return nil
		},
		Reduce: func(key string, values [][]byte, emit mapreduce.Emit) error {
			for _, v := range values {
				emit(key, v)
			}
			return nil
		},
	}
	mapreduce.Register(job)
	return job
}

// ClusterJob builds the stage-2 MapReduce job (Algorithm 2): each
// reduce key is one merged bucket; the reducer computes the bucket's
// sub-similarity matrix and runs spectral clustering, emitting one
// (bucketSig, point/label/k) record per point.
func ClusterJob(prefix string, points *matrix.Dense, cfg Config, sigma float64) *mapreduce.Job {
	n := points.Rows()
	kf := kernel.Gaussian(sigma)
	job := &mapreduce.Job{
		Name:        prefix + "/cluster",
		NumReducers: 4,
		Map: func(key string, value []byte, emit mapreduce.Emit) error {
			emit(key, value) // identity: buckets are already formed
			return nil
		},
		Reduce: func(key string, values [][]byte, emit mapreduce.Emit) error {
			for _, v := range values {
				indices, err := decodeIndices(v)
				if err != nil {
					return err
				}
				labels, k, err := clusterOneBucket(points, indices, cfg, n, kf)
				if err != nil {
					return err
				}
				for pi, idx := range indices {
					emit(key, encodeLabel(idx, labels[pi], k))
				}
			}
			return nil
		},
	}
	mapreduce.Register(job)
	return job
}

// encodeIndices packs point indices as little-endian uint32s.
func encodeIndices(indices []int) []byte {
	buf := make([]byte, 4*len(indices))
	for i, idx := range indices {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(idx))
	}
	return buf
}

func decodeIndices(buf []byte) ([]int, error) {
	if len(buf)%4 != 0 {
		return nil, fmt.Errorf("core: index payload length %d", len(buf))
	}
	out := make([]int, len(buf)/4)
	for i := range out {
		v := binary.LittleEndian.Uint32(buf[i*4:])
		if v > math.MaxInt32 {
			return nil, fmt.Errorf("core: index %d overflows", v)
		}
		out[i] = int(v)
	}
	return out, nil
}

// encodeLabel packs (pointIndex, localLabel, bucketK).
func encodeLabel(idx, label, k int) []byte {
	buf := make([]byte, 12)
	binary.LittleEndian.PutUint32(buf[0:], uint32(idx))
	binary.LittleEndian.PutUint32(buf[4:], uint32(label))
	binary.LittleEndian.PutUint32(buf[8:], uint32(k))
	return buf
}

func decodeLabel(buf []byte) (idx, label, k int) {
	return int(binary.LittleEndian.Uint32(buf[0:])),
		int(binary.LittleEndian.Uint32(buf[4:])),
		int(binary.LittleEndian.Uint32(buf[8:]))
}
