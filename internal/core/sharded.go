package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/embed"
	"repro/internal/kernel"
	"repro/internal/kmeans"
	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/shard"
	"repro/internal/spectral"
)

// This file provides the out-of-core MapReduce formulation of DASC:
// the input matrix lives in a shard directory (internal/shard) instead
// of driver memory, and both stages' workers demand-read only the rows
// their tasks touch. The driver's resident footprint is the fit sample
// plus MapReduce bookkeeping — never the full matrix — so dataset size
// is bounded by disk, not RAM. Combined with Config.SpillBytes this is
// the data plane of the first million-point runs.
//
// Stage 1 maps over shard row ranges (the HDFS-input-split analogue):
// each record names a [start, start+count) range, the mapper streams
// exactly those rows from its process-local shard reader and emits the
// usual (table:signature, index) records. Stage 2 ships only bucket
// index lists; the reducer hydrates each bucket's rows from the shards
// and runs the same solve engine as every other driver. With
// Config.FitSample >= N the plan fit sees every row and the labels are
// bit-identical to the in-memory drivers'.

// Names of the factory-registered sharded jobs.
const (
	ShardedLSHJobName     = "dasc/sharded-lsh"
	ShardedClusterJobName = "dasc/sharded-cluster"
)

func init() {
	mapreduce.RegisterFactory(ShardedLSHJobName, newShardedLSHJob)
	mapreduce.RegisterFactory(ShardedClusterJobName, newShardedClusterJob)
	// Workers ship this process-cumulative meter back on TCP results so
	// a master in another process can account our shard reads.
	mapreduce.SetShardMeter(workerShardBytes)
}

// shardedLSHConf is the stage-1 configuration: the shard directory and
// every table's fitted hash parameters.
type shardedLSHConf struct {
	Dir    string
	Tables []lshTable
}

// shardedClusterConf is the stage-2 configuration: the shard directory
// plus the same clustering parameters the shipped job carries. Workers
// refit the kernel embedding from (Cols, EmbedDim, Sigma, Seed) — a
// pure function, so every worker holds bitwise the same feature map.
type shardedClusterConf struct {
	Dir string
	C   clusterConf
}

// shardReaders caches one open shard.Reader per directory for the
// lifetime of the worker process — the HDFS-block-cache analogue. The
// readers are never closed (their handles die with the process, and
// every task of every job over the same input shares them); reads go
// through ReadAt, so one reader serves concurrent reduce tasks.
var shardReaders sync.Map // dir -> *shard.Reader

// cachedShardReader returns the process-wide reader for dir, opening
// it on first use. A racing open closes the loser.
func cachedShardReader(dir string) (*shard.Reader, error) {
	if v, ok := shardReaders.Load(dir); ok {
		return v.(*shard.Reader), nil
	}
	r, err := shard.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("core: shard input: %w", err)
	}
	if v, loaded := shardReaders.LoadOrStore(dir, r); loaded {
		if cerr := r.Close(); cerr != nil {
			return nil, fmt.Errorf("core: shard input: %w", cerr)
		}
		return v.(*shard.Reader), nil
	}
	return r, nil
}

// workerShardBytes sums the shard bytes read through this process's
// reader cache, for the driver's ShardReadBytes delta accounting.
func workerShardBytes() int64 {
	var total int64
	shardReaders.Range(func(_, v interface{}) bool {
		total += v.(*shard.Reader).BytesRead()
		return true
	})
	return total
}

// workerShardIOStats additionally sums the ReadAt-call and
// coalesced-read counters across the reader cache.
func workerShardIOStats() (bytes, ops, coalesced int64) {
	shardReaders.Range(func(_, v interface{}) bool {
		r := v.(*shard.Reader)
		bytes += r.BytesRead()
		ops += r.ReadOps()
		coalesced += r.CoalescedReads()
		return true
	})
	return bytes, ops, coalesced
}

// encodeRowRange / decodeRowRange pack a stage-1 input record: one
// half-open shard row range [start, start+count).
func encodeRowRange(start, count int) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint32(buf[0:], uint32(start))
	binary.LittleEndian.PutUint32(buf[4:], uint32(count))
	return buf
}

func decodeRowRange(buf []byte) (start, count int, err error) {
	if len(buf) != 8 {
		return 0, 0, fmt.Errorf("core: row range payload length %d", len(buf))
	}
	return int(binary.LittleEndian.Uint32(buf[0:])), int(binary.LittleEndian.Uint32(buf[4:])), nil
}

// newShardedLSHJob rebuilds stage 1 from its configuration: the mapper
// streams its record's row range from the local shard reader, hashes
// every row with each table's shipped thresholds, and emits one
// (table:signature, index) record per table; the reducer is the
// identity grouping, exactly like the shipped LSH job.
func newShardedLSHJob(conf []byte) (*mapreduce.Job, error) {
	var c shardedLSHConf
	if err := gobDecode(conf, &c); err != nil {
		return nil, fmt.Errorf("core: sharded lsh conf: %w", err)
	}
	if c.Dir == "" || len(c.Tables) == 0 {
		return nil, fmt.Errorf("core: sharded lsh conf needs a directory and tables")
	}
	for t, tab := range c.Tables {
		if len(tab.Dims) != len(tab.Thresholds) || len(tab.Dims) == 0 {
			return nil, fmt.Errorf("core: sharded lsh conf table %d has %d dims, %d thresholds",
				t, len(tab.Dims), len(tab.Thresholds))
		}
	}
	return &mapreduce.Job{
		NumReducers: 4,
		SplitSize:   1, // one map task per shard row range
		Map: func(key string, value []byte, emit mapreduce.Emit) error {
			start, count, err := decodeRowRange(value)
			if err != nil {
				return err
			}
			r, err := cachedShardReader(c.Dir)
			if err != nil {
				return err
			}
			return r.Stream(start, count, func(idx int, row []float64) error {
				buf := make([]byte, 4)
				binary.LittleEndian.PutUint32(buf, uint32(idx))
				for t, tab := range c.Tables {
					var sig uint64
					for i, dim := range tab.Dims {
						if dim < 0 || dim >= len(row) {
							return fmt.Errorf("hash dimension %d outside vector of %d", dim, len(row))
						}
						if row[dim] > tab.Thresholds[i] {
							sig |= 1 << uint(i)
						}
					}
					emit(encodeSigKey(t, sig), buf)
				}
				return nil
			})
		},
		Reduce: func(key string, values [][]byte, emit mapreduce.Emit) error {
			for _, v := range values {
				emit(key, v)
			}
			return nil
		},
	}, nil
}

// newShardedClusterJob rebuilds stage 2: each reduce value is a bucket
// index list; the reducer hydrates exactly those rows from the shard
// reader, runs the per-bucket solve (same engine, same embed policy as
// the in-memory drivers), and emits per-point (index, localLabel, k)
// plus the bucket stats record.
func newShardedClusterJob(conf []byte) (*mapreduce.Job, error) {
	var sc shardedClusterConf
	if err := gobDecode(conf, &sc); err != nil {
		return nil, fmt.Errorf("core: sharded cluster conf: %w", err)
	}
	c := sc.C
	if sc.Dir == "" || c.N < 1 || c.K < 1 || c.Sigma <= 0 || c.EmbedDim < 0 ||
		(c.EmbedDim > 0 && c.EmbedCutoff < 1) {
		return nil, fmt.Errorf("core: sharded cluster conf %+v invalid", sc)
	}
	// The embedder is a pure function of (cols, d', sigma, seed): fit it
	// once per job build so every reduce task shares one feature map,
	// bitwise identical to the driver's.
	var emb embed.Embedder
	if c.EmbedDim > 0 {
		r, err := cachedShardReader(sc.Dir)
		if err != nil {
			return nil, err
		}
		emb, err = embed.NewRFF(r.Cols(), c.EmbedDim, c.Sigma, c.Seed)
		if err != nil {
			return nil, fmt.Errorf("core: sharded embed: %w", err)
		}
	}
	return &mapreduce.Job{
		NumReducers: 4,
		Map: func(key string, value []byte, emit mapreduce.Emit) error {
			emit(key, value) // identity: buckets are already formed
			return nil
		},
		Reduce: func(key string, values [][]byte, emit mapreduce.Emit) error {
			r, err := cachedShardReader(sc.Dir)
			if err != nil {
				return err
			}
			var scratch []float64
			for _, v := range values {
				indices, err := decodeIndicesConf(v, c.Compression)
				if err != nil {
					return err
				}
				pts, err := hydrateBucket(r, indices)
				if err != nil {
					return err
				}
				sol, err := clusterHydratedBucket(pts, c, indices, emb, &scratch)
				if err != nil {
					return err
				}
				for pos, idx := range indices {
					emit(key, encodeLabel(idx, sol.Labels[pos], sol.K))
				}
				emit(key, encodeBucketStatsConf(sol, c.Compression))
			}
			return nil
		},
	}, nil
}

// hydrateBucket demand-reads one bucket's rows into a dense ni×d
// block — the only rows of the matrix this reduce task ever touches.
// Bucket index lists are sorted ascending, so the coalescing gather
// turns a bucket that lands inside one shard into a few large reads.
func hydrateBucket(r *shard.Reader, indices []int) (*matrix.Dense, error) {
	pts := matrix.NewDense(len(indices), r.Cols())
	if err := r.ReadRowsInto(indices, pts.Row); err != nil {
		return nil, err
	}
	return pts, nil
}

// clusterHydratedBucket mirrors clusterOneBucket on a hydrated bucket:
// unlike the shipped job (whose embedded buckets arrive pre-embedded),
// the sharded reducer holds raw rows and the worker-side feature map,
// so it routes through the same engine config as the local driver —
// embed gate included — and the engine makes identical choices.
func clusterHydratedBucket(pts *matrix.Dense, c clusterConf, indices []int, emb embed.Embedder, scratch *[]float64) (BucketSolution, error) {
	ni := pts.Rows()
	ki := BucketK(c.K, ni, c.N)
	if ni == 1 || ki == 1 {
		return BucketSolution{Labels: make([]int, ni), K: 1, Solver: SolverTrivial}, nil
	}
	if ki == ni {
		labels := make([]int, ni)
		for i := range labels {
			labels[i] = i
		}
		return BucketSolution{Labels: labels, K: ni, Solver: SolverTrivial}, nil
	}
	all := make([]int, ni)
	for i := range all {
		all[i] = i
	}
	ecfg := spectral.EngineConfig{
		K:            ki,
		Seed:         c.Seed + int64(indices[0]),
		SparseCutoff: c.SparseCutoff,
		Epsilon:      c.Epsilon,
		Embedder:     emb,
		EmbedCutoff:  c.EmbedCutoff,
	}
	res, stats, err := spectral.ClusterBucket(pts, all, kernel.NewGaussian(c.Sigma), ecfg, scratch)
	if err == nil {
		return BucketSolution{
			Labels: res.Labels, K: ki,
			Solver: stats.Solver, NNZ: stats.NNZ, Fill: stats.Fill,
			SolveNanos: stats.Nanos, GramBytes: stats.GramBytes,
		}, nil
	}
	km, kerr := kmeans.Run(pts, kmeans.Config{K: ki, Seed: c.Seed})
	if kerr != nil {
		return BucketSolution{}, fmt.Errorf("spectral (%v) and kmeans fallback (%v) both failed", err, kerr)
	}
	return BucketSolution{
		Labels: km.Labels, K: ki,
		Solver: SolverKMeansFallback, NNZ: stats.NNZ, Fill: stats.Fill,
		SolveNanos: stats.Nanos, GramBytes: stats.GramBytes,
	}, nil
}

// shardPoints adapts a shard.Reader to lsh.PointSource for
// margin-ordered probing. Row allocates per call; the partition stage
// only consults it when ProbeRadius > 0, and a read failure surfaces
// through err (Row itself cannot fail, so it returns a zero row and
// the driver checks err after partitioning).
type shardPoints struct {
	r   *shard.Reader
	err error
}

func (s *shardPoints) Rows() int { return s.r.Rows() }

func (s *shardPoints) Row(i int) []float64 {
	row, err := s.r.ReadRow(i, nil)
	if err != nil {
		if s.err == nil {
			s.err = err
		}
		return make([]float64, s.r.Cols())
	}
	return row
}

// readFitSample reads min(FitSample, N) evenly spaced rows into a
// dense fit matrix. With FitSample >= N this is the full matrix in row
// order, which makes every downstream fit identical to the in-memory
// drivers'.
func readFitSample(r *shard.Reader, fitSample int) (*matrix.Dense, error) {
	n := r.Rows()
	m := fitSample
	if m > n {
		m = n
	}
	sample := matrix.NewDense(m, r.Cols())
	indices := make([]int, m)
	for i := 0; i < m; i++ {
		indices[i] = i * n / m // evenly spaced; identity i==idx when m == n
	}
	if err := r.ReadRowsInto(indices, sample.Row); err != nil {
		return nil, err
	}
	return sample, nil
}

// ClusterMapReduceSharded runs DASC's two MapReduce stages against a
// shard directory written by internal/shard, never materializing the
// input matrix in driver memory: stage-1 mappers stream their assigned
// shard row ranges and stage-2 reducers demand-read only the rows their
// buckets reference. The plan (LSH thresholds, kernel bandwidth,
// feature map) is fitted from Config.FitSample evenly spaced rows;
// FitSample >= N makes the labels bit-identical to the in-memory
// drivers. Workers may live in other OS processes provided they can
// open the same shard directory (start them with cmd/dascworker on a
// shared filesystem).
func ClusterMapReduceSharded(dir string, cfg Config, exec mapreduce.Executor) (*Result, error) {
	return ClusterMapReduceShardedContext(context.Background(), dir, cfg, exec)
}

// ClusterMapReduceShardedContext is ClusterMapReduceSharded with
// cancellation.
func ClusterMapReduceShardedContext(ctx context.Context, dir string, cfg Config, exec mapreduce.Executor) (_ *Result, err error) {
	start := time.Now()
	startShardBytes, startShardOps, startShardCoalesced := workerShardIOStats()
	// The driver uses the same process-wide cached reader as in-process
	// workers: one set of handles per directory, shared by the fit
	// sample, probe reads, and every local reduce task.
	reader, err := cachedShardReader(dir)
	if err != nil {
		return nil, err
	}
	n := reader.Rows()
	cfg, radius, err := cfg.resolve(n)
	if err != nil {
		return nil, err
	}

	// Plan fit from the sample.
	sample, err := readFitSample(reader, cfg.FitSample)
	if err != nil {
		return nil, fmt.Errorf("core: sharded fit sample: %w", err)
	}
	ens, err := lsh.FitEnsemble(sample, lsh.Config{
		M: cfg.M, Policy: cfg.Policy, Bins: cfg.Bins, Seed: cfg.Seed,
	}, lsh.EnsembleConfig{
		Tables:          cfg.Tables,
		ProbeRadius:     cfg.ProbeRadius,
		MaxMergedBucket: cfg.MaxMergedBucket,
	})
	if err != nil {
		return nil, fmt.Errorf("core: lsh: %w", err)
	}
	sigma := cfg.Sigma
	if sigma <= 0 {
		sigma = kernel.MedianSigma(sample, 512, cfg.Seed)
	}
	hashers := make([]*lsh.Hasher, 0, len(ens.Families()))
	for t, f := range ens.Families() {
		h, ok := f.(*lsh.Hasher)
		if !ok {
			return nil, fmt.Errorf("core: table %d is %T, the sharded driver needs the fitted hasher", t, f)
		}
		hashers = append(hashers, h)
	}

	ctr := &mapreduce.Counters{}

	// Stage 1: signatures from shard row ranges.
	lshBlob, err := gobEncode(shardedLSHConf{Dir: dir, Tables: tablesConf(hashers)})
	if err != nil {
		return nil, err
	}
	lshJob, err := newShardedLSHJob(lshBlob)
	if err != nil {
		return nil, err
	}
	lshJob.Name = ShardedLSHJobName
	lshJob.Conf = lshBlob
	lshJob.SpillBytes = cfg.SpillBytes
	lshJob.Compress = cfg.Compression
	ranges := reader.Ranges()
	input := make([]mapreduce.Pair, len(ranges))
	for i, rg := range ranges {
		input[i] = mapreduce.Pair{Key: strconv.Itoa(i), Value: encodeRowRange(rg[0], rg[1]-rg[0])}
	}
	sigPairs, sctr, err := mapreduce.RunWithContext(ctx, exec, lshJob, input)
	if err != nil {
		return nil, fmt.Errorf("core: lsh stage: %w", err)
	}
	ctr.Add(sctr)
	sigs, err := signaturesFromPairs(sigPairs, n, len(hashers))
	if err != nil {
		return nil, err
	}

	// Stage 2 input: bucket-merge on the driver, exactly like every
	// other runner. Margin-ordered probing reads rows on demand through
	// the shard adapter; without probing no row is touched.
	var psrc lsh.PointSource
	var sp *shardPoints
	if cfg.ProbeRadius > 0 {
		sp = &shardPoints{r: reader}
		psrc = sp
	}
	part, err := ens.Partition(psrc, sigs, radius)
	if err != nil {
		return nil, fmt.Errorf("core: sharded: %w", err)
	}
	if sp != nil && sp.err != nil {
		return nil, fmt.Errorf("core: sharded probe rows: %w", sp.err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: sharded: %w", err)
	}

	clusterBlob, err := gobEncode(shardedClusterConf{Dir: dir, C: clusterConf{
		N: n, K: cfg.K, Sigma: sigma, Seed: cfg.Seed,
		SparseCutoff: cfg.SparseCutoff, Epsilon: cfg.Epsilon,
		EmbedDim: cfg.EmbedDim, EmbedCutoff: cfg.EmbedCutoff,
		Compression: cfg.Compression,
	}})
	if err != nil {
		return nil, err
	}
	clusterJob, err := newShardedClusterJob(clusterBlob)
	if err != nil {
		return nil, err
	}
	clusterJob.Name = ShardedClusterJobName
	clusterJob.Conf = clusterBlob
	clusterJob.SpillBytes = cfg.SpillBytes
	clusterJob.Compress = cfg.Compression
	stage2 := make([]mapreduce.Pair, len(part.Buckets))
	for bi, b := range part.Buckets {
		stage2[bi] = mapreduce.Pair{
			Key:   fmt.Sprintf("%016x", b.Signature),
			Value: encodeIndicesConf(b.Indices, cfg.Compression),
		}
	}
	labelPairs, cctr, err := mapreduce.RunWithContext(ctx, exec, clusterJob, stage2)
	if err != nil {
		return nil, fmt.Errorf("core: cluster stage: %w", err)
	}
	ctr.Add(cctr)
	sols, err := solutionsFromLabelPairs(part, labelPairs, n, cfg.Compression)
	if err != nil {
		return nil, err
	}

	res, err := assembleSolutions(part, sols, n)
	if err != nil {
		return nil, fmt.Errorf("core: sharded: %w", err)
	}
	res.SignatureBits = cfg.M
	res.MergeRadius = radius
	res.Elapsed = time.Since(start)
	// Process-local shard-read accounting: exact when the executor's
	// workers share this process; external TCP worker processes report
	// their byte meter on result frames, which the master already folded
	// into the stage counters (see mapreduce.Counters.ShardReadBytes).
	endShardBytes, endShardOps, endShardCoalesced := workerShardIOStats()
	ctr.ShardReadBytes += endShardBytes - startShardBytes
	ctr.ShardReadOps += endShardOps - startShardOps
	ctr.ShardCoalescedReads += endShardCoalesced - startShardCoalesced
	res.MapReduce = ctr
	return res, nil
}

// tablesConf extracts every fitted hasher's wire parameters.
func tablesConf(hashers []*lsh.Hasher) []lshTable {
	out := make([]lshTable, len(hashers))
	for t, h := range hashers {
		out[t] = lshTable{Dims: h.Dimensions(), Thresholds: h.Thresholds()}
	}
	return out
}
