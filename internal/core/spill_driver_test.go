package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/mapreduce"
)

// TestSpillEnabledDriversMatchInMemory is the out-of-core shuffle's
// label contract at the driver level: with Config.SpillBytes forcing
// the masters to spill map output to disk, the closure and shipped
// MapReduce drivers — over the Local executor and over TCP — must
// reproduce the in-memory driver's labels bit for bit.
func TestSpillEnabledDriversMatchInMemory(t *testing.T) {
	l := mixture(t, 200, 10, 3, 0.03, 31)
	base, err := Cluster(l.Points, Config{K: 3, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	// A 1KiB budget forces many flushes on the ~200-record stage-1
	// shuffle while staying fast.
	cfg := Config{K: 3, Seed: 32, SpillBytes: 1 << 10}

	check := func(name string, res *Result, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range base.Labels {
			if res.Labels[i] != base.Labels[i] {
				t.Fatalf("%s: label[%d] = %d, in-memory %d", name, i, res.Labels[i], base.Labels[i])
			}
		}
		if res.MapReduce == nil || res.MapReduce.SpillBytes == 0 {
			t.Fatalf("%s: expected spill counters, got %+v", name, res.MapReduce)
		}
	}

	mr, err := ClusterMapReduce(l.Points, cfg, &mapreduce.Local{}, "spill-local")
	check("closure/local", mr, err)
	sh, err := ClusterMapReduceShipped(l.Points, cfg, &mapreduce.Local{})
	check("shipped/local", sh, err)

	m, err := mapreduce.NewMaster("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := mapreduce.RunWorker(m.Addr()); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.ConnectedWorkers() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers did not join")
		}
		time.Sleep(time.Millisecond)
	}
	tcp, err := ClusterMapReduceShipped(l.Points, cfg, m)
	check("shipped/tcp", tcp, err)
	m.Close()
	wg.Wait()
}
