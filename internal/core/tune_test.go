package core

import (
	"testing"
)

func TestTuneMPicksLargestSatisfyingM(t *testing.T) {
	l := mixture(t, 600, 16, 8, 0.03, 80)
	m, sweep, err := TuneM(l.Points, Config{Seed: 81}, 0.5, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) == 0 {
		t.Fatal("empty sweep")
	}
	// The chosen M must satisfy the floor; every larger swept M that
	// satisfies it must not exceed the choice.
	var chosen *TuneReport
	for i := range sweep {
		if sweep[i].M == m {
			chosen = &sweep[i]
		}
	}
	if chosen == nil {
		t.Fatalf("chosen M=%d missing from sweep", m)
	}
	if chosen.FnormRatio < 0.5 {
		t.Fatalf("chosen M=%d has ratio %v < floor", m, chosen.FnormRatio)
	}
	for _, r := range sweep {
		if r.M > m && r.FnormRatio >= 0.5 {
			t.Fatalf("M=%d also satisfies the floor but was not chosen over %d", r.M, m)
		}
	}
	// Gram fraction must shrink (weakly) along the sweep overall: last
	// below first.
	if sweep[len(sweep)-1].GramFrac >= sweep[0].GramFrac {
		t.Fatalf("gram fraction did not fall across the sweep: %+v", sweep)
	}
}

func TestTuneMValidation(t *testing.T) {
	l := mixture(t, 50, 4, 2, 0.05, 82)
	if _, _, err := TuneM(l.Points, Config{}, 0, 100); err == nil {
		t.Fatal("expected error for zero floor")
	}
	if _, _, err := TuneM(l.Points, Config{}, 1.5, 100); err == nil {
		t.Fatal("expected error for floor > 1")
	}
	if _, _, err := TuneM(matrixOfSize(1, 2), Config{}, 0.5, 100); err == nil {
		t.Fatal("expected error for single point")
	}
}

func TestTuneMFeedsCluster(t *testing.T) {
	l := mixture(t, 400, 12, 4, 0.03, 83)
	m, _, err := TuneM(l.Points, Config{Seed: 84}, 0.4, 4000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(l.Points, Config{K: 4, Seed: 84, M: m})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := metricsAccuracy(l.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Fatalf("tuned run accuracy = %v", acc)
	}
}
