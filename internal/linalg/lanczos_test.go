package linalg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestLanczosMatchesDenseSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 60
	a := randSym(rng, n)
	wantVals, _, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lanczos(MatVec(a), n, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if math.Abs(res.Values[i]-wantVals[i]) > 1e-6*(1+math.Abs(wantVals[i])) {
			t.Fatalf("lanczos[%d] = %v, dense = %v", i, res.Values[i], wantVals[i])
		}
	}
	// Residual check: ||A v - lambda v|| small.
	for c := 0; c < res.Vectors.Cols(); c++ {
		v := res.Vectors.Col(c)
		av, _ := a.MulVec(v)
		matrix.AXPY(-res.Values[c], v, av)
		if r := matrix.Norm2(av); r > 1e-5*(1+math.Abs(res.Values[c])) {
			t.Fatalf("residual col %d = %g", c, r)
		}
	}
}

func TestLanczosInvalidArgs(t *testing.T) {
	if _, err := Lanczos(MatVec(matrix.Identity(2)), 2, 0, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := Lanczos(MatVec(matrix.Identity(2)), 0, 1, 0); err == nil {
		t.Fatal("expected error for n=0")
	}
}

func TestLanczosIdentityEarlyTermination(t *testing.T) {
	// On the identity the Krylov space has dimension 1: beta vanishes
	// immediately and Lanczos must still return valid (if repeated)
	// eigenvalues without crashing.
	n := 20
	res, err := Lanczos(MatVec(matrix.Identity(n)), n, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) == 0 || math.Abs(res.Values[0]-1) > 1e-10 {
		t.Fatalf("identity eigenvalue = %v", res.Values)
	}
}

func TestLanczosKClampedToN(t *testing.T) {
	a, _ := matrix.FromRows([][]float64{{5, 0}, {0, 2}})
	res, err := Lanczos(MatVec(a), 2, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 2 {
		t.Fatalf("len(values) = %d, want 2", len(res.Values))
	}
	if math.Abs(res.Values[0]-5) > 1e-10 || math.Abs(res.Values[1]-2) > 1e-10 {
		t.Fatalf("values = %v", res.Values)
	}
}

func TestLanczosSeedIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := symFromSpectrum(rng, []float64{7, 5, 3, 2, 1, 0.5, 0.2, 0.1})
	r1, err := Lanczos(MatVec(a), 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Lanczos(MatVec(a), 8, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if math.Abs(r1.Values[i]-r2.Values[i]) > 1e-7 {
			t.Fatalf("seed-dependent eigenvalues: %v vs %v", r1.Values, r2.Values)
		}
	}
}

func TestPowerIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := symFromSpectrum(rng, []float64{9, 3, 1})
	lambda, v := PowerIteration(MatVec(a), 3, 200, 0)
	if math.Abs(lambda-9) > 1e-6 {
		t.Fatalf("power lambda = %v, want 9", lambda)
	}
	av, _ := a.MulVec(v)
	matrix.AXPY(-lambda, v, av)
	if matrix.Norm2(av) > 1e-5 {
		t.Fatalf("power residual = %g", matrix.Norm2(av))
	}
}

func TestOrthonormalityDiagnostic(t *testing.T) {
	if dev := Orthonormality(matrix.Identity(4)); dev != 0 {
		t.Fatalf("identity deviation = %v", dev)
	}
	bad, _ := matrix.FromRows([][]float64{{1, 1}, {0, 0}})
	if dev := Orthonormality(bad); dev < 0.9 {
		t.Fatalf("expected large deviation, got %v", dev)
	}
}

func TestDecomposeQRProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, dims := range [][2]int{{3, 3}, {5, 3}, {10, 10}, {8, 1}} {
		m, n := dims[0], dims[1]
		a := matrix.NewDense(m, n)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		qr, err := DecomposeQR(a)
		if err != nil {
			t.Fatal(err)
		}
		// Q orthonormal.
		if dev := Orthonormality(qr.Q); dev > 1e-10 {
			t.Fatalf("%dx%d: Q deviation %g", m, n, dev)
		}
		// R upper triangular.
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				if qr.R.At(i, j) != 0 {
					t.Fatalf("R not upper triangular at (%d,%d)", i, j)
				}
			}
		}
		// Q*R == A.
		back, _ := matrix.Mul(qr.Q, qr.R)
		if !matrix.Equal(back, a, 1e-9) {
			t.Fatalf("%dx%d: QR reconstruction failed", m, n)
		}
	}
	if _, err := DecomposeQR(matrix.NewDense(2, 3)); err == nil {
		t.Fatal("expected error for wide matrix")
	}
}
