package linalg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/matrix"
)

// JacobiEigenSym computes the full eigendecomposition of a symmetric
// matrix with the classical cyclic Jacobi rotation method. It is an
// order of magnitude slower than EigenSym's Householder+QL pipeline but
// is a completely independent algorithm, which makes it the test
// oracle for the production solver (the property suite checks the two
// agree). Returns eigenvalues descending with matching eigenvector
// columns.
func JacobiEigenSym(a *matrix.Dense) ([]float64, *matrix.Dense, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, nil, fmt.Errorf("linalg: JacobiEigenSym of non-square %dx%d", n, a.Cols())
	}
	if n == 0 {
		return nil, matrix.NewDense(0, 0), nil
	}
	if !a.IsSymmetric(1e-8 * (1 + a.MaxAbs())) {
		return nil, nil, errors.New("linalg: JacobiEigenSym requires a symmetric matrix")
	}
	w := a.Clone()
	v := matrix.Identity(n)
	const maxSweeps = 100

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += w.At(i, j) * w.At(i, j)
			}
		}
		return s
	}
	scale := 1 + w.MaxAbs()
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if math.Sqrt(offDiag()) < 1e-12*scale*float64(n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = w.At(i, i)
	}
	sortEigenDesc(vals, v)
	return vals, v, nil
}

// rotate applies the Jacobi rotation J(p,q,c,s) as a similarity
// transform to w and accumulates it into v.
func rotate(w, v *matrix.Dense, p, q int, c, s float64) {
	n := w.Rows()
	for k := 0; k < n; k++ {
		wkp, wkq := w.At(k, p), w.At(k, q)
		w.Set(k, p, c*wkp-s*wkq)
		w.Set(k, q, s*wkp+c*wkq)
	}
	for k := 0; k < n; k++ {
		wpk, wqk := w.At(p, k), w.At(q, k)
		w.Set(p, k, c*wpk-s*wqk)
		w.Set(q, k, s*wpk+c*wqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}
