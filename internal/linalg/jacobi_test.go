package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestJacobiKnown2x2(t *testing.T) {
	a, _ := matrix.FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := JacobiEigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("vals = %v", vals)
	}
	if dev := Orthonormality(vecs); dev > 1e-10 {
		t.Fatalf("vector deviation %g", dev)
	}
}

func TestJacobiValidation(t *testing.T) {
	if _, _, err := JacobiEigenSym(matrix.NewDense(2, 3)); err == nil {
		t.Fatal("expected non-square error")
	}
	bad, _ := matrix.FromRows([][]float64{{0, 1}, {0, 0}})
	if _, _, err := JacobiEigenSym(bad); err == nil {
		t.Fatal("expected asymmetry error")
	}
	vals, vecs, err := JacobiEigenSym(matrix.NewDense(0, 0))
	if err != nil || len(vals) != 0 || vecs.Rows() != 0 {
		t.Fatalf("empty: %v %v %v", vals, vecs, err)
	}
}

func TestJacobiEigenpairsResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 5, 12} {
		a := randSym(rng, n)
		vals, vecs, err := JacobiEigenSym(a)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < n; c++ {
			v := vecs.Col(c)
			av, _ := a.MulVec(v)
			matrix.AXPY(-vals[c], v, av)
			if r := matrix.Norm2(av); r > 1e-8*(1+a.MaxAbs()*float64(n)) {
				t.Fatalf("n=%d col %d residual %g", n, c, r)
			}
		}
	}
}

// Property: the production Householder+QL solver and the independent
// Jacobi oracle agree on eigenvalues of random symmetric matrices.
func TestPropEigenSolversAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randSym(rng, n)
		v1, _, err1 := EigenSym(a)
		v2, _, err2 := JacobiEigenSym(a)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range v1 {
			if math.Abs(v1[i]-v2[i]) > 1e-7*(1+math.Abs(v1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
