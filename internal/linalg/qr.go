package linalg

import (
	"fmt"

	"repro/internal/matrix"
)

// QR holds a Householder QR factorization A = Q*R with Q orthonormal
// (m x n, thin) and R upper triangular (n x n).
type QR struct {
	Q *matrix.Dense
	R *matrix.Dense
}

// DecomposeQR computes the thin QR factorization of a (m x n, m >= n)
// by modified Gram–Schmidt with a single reorthogonalization pass,
// which is numerically adequate for the well-conditioned eigenvector
// blocks produced by the clustering pipeline.
func DecomposeQR(a *matrix.Dense) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", m, n)
	}
	q := a.Clone()
	r := matrix.NewDense(n, n)
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		cols[j] = make([]float64, m)
		for i := 0; i < m; i++ {
			cols[j][i] = q.At(i, j)
		}
	}
	for j := 0; j < n; j++ {
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < j; i++ {
				c := matrix.Dot(cols[i], cols[j])
				r.Add(i, j, c)
				matrix.AXPY(-c, cols[i], cols[j])
			}
		}
		norm := matrix.Normalize(cols[j])
		r.Set(j, j, norm)
	}
	out := matrix.NewDense(m, n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			out.Set(i, j, cols[j][i])
		}
	}
	return &QR{Q: out, R: r}, nil
}
