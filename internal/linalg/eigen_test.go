package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// randSym builds a random symmetric matrix with entries from N(0,1).
func randSym(rng *rand.Rand, n int) *matrix.Dense {
	a := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

// symFromSpectrum builds Q diag(vals) Q^T with a random orthonormal Q.
func symFromSpectrum(rng *rand.Rand, vals []float64) *matrix.Dense {
	n := len(vals)
	g := matrix.NewDense(n, n)
	for i := range g.Data() {
		g.Data()[i] = rng.NormFloat64()
	}
	qr, err := DecomposeQR(g)
	if err != nil {
		panic(err)
	}
	q := qr.Q
	d := matrix.NewDense(n, n)
	for i, v := range vals {
		d.Set(i, i, v)
	}
	qd, _ := matrix.Mul(q, d)
	out, _ := matrix.Mul(qd, q.T())
	return out
}

func TestEigenSymDiagonal(t *testing.T) {
	a, _ := matrix.FromRows([][]float64{{3, 0}, {0, 1}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("vals = %v", vals)
	}
	if math.Abs(math.Abs(vecs.At(0, 0))-1) > 1e-12 {
		t.Fatalf("vecs = %v", vecs)
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a, _ := matrix.FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("vals = %v, want [3 1]", vals)
	}
	// Eigenvector for 3 is (1,1)/sqrt2 up to sign.
	v0 := vecs.Col(0)
	if math.Abs(math.Abs(v0[0])-1/math.Sqrt2) > 1e-10 || math.Abs(v0[0]-v0[1]) > 1e-10 {
		t.Fatalf("v0 = %v", v0)
	}
}

func TestEigenSymRejectsNonSquareAndAsymmetric(t *testing.T) {
	if _, _, err := EigenSym(matrix.NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square")
	}
	a, _ := matrix.FromRows([][]float64{{1, 2}, {0, 1}})
	if _, _, err := EigenSym(a); err == nil {
		t.Fatal("expected error for asymmetric")
	}
}

func TestEigenSymEmpty(t *testing.T) {
	vals, vecs, err := EigenSym(matrix.NewDense(0, 0))
	if err != nil || len(vals) != 0 || vecs.Rows() != 0 {
		t.Fatalf("empty: %v %v %v", vals, vecs, err)
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 3, 5, 10, 25} {
		a := randSym(rng, n)
		vals, vecs, err := EigenSym(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// A v_i = lambda_i v_i for each pair.
		for c := 0; c < n; c++ {
			v := vecs.Col(c)
			av, _ := a.MulVec(v)
			for r := 0; r < n; r++ {
				if math.Abs(av[r]-vals[c]*v[r]) > 1e-8*(1+a.MaxAbs()*float64(n)) {
					t.Fatalf("n=%d col=%d: residual %g", n, c, math.Abs(av[r]-vals[c]*v[r]))
				}
			}
		}
		if dev := Orthonormality(vecs); dev > 1e-9 {
			t.Fatalf("n=%d: eigenvector basis deviation %g", n, dev)
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("n=%d: values not descending: %v", n, vals)
			}
		}
	}
}

func TestEigenSymKnownSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	want := []float64{9, 4, 1, 0.5, -2}
	a := symFromSpectrum(rng, want)
	vals, _, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-8 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
}

func TestPropEigenTraceAndFrobenius(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randSym(rng, n)
		vals, _, err := EigenSym(a)
		if err != nil {
			return false
		}
		var trace, sumVals, sq, sumSq float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		for _, v := range vals {
			sumVals += v
			sumSq += v * v
		}
		sq = a.Frobenius()
		sq *= sq
		return math.Abs(trace-sumVals) < 1e-7*(1+math.Abs(trace)) &&
			math.Abs(sq-sumSq) < 1e-6*(1+sq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKEigenSymDensePath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	want := []float64{10, 8, 3, 1, 0.1}
	a := symFromSpectrum(rng, want)
	vals, vecs, err := TopKEigenSym(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vecs.Cols() != 2 || vecs.Rows() != 5 {
		t.Fatalf("shape: %d vals, vecs %dx%d", len(vals), vecs.Rows(), vecs.Cols())
	}
	if math.Abs(vals[0]-10) > 1e-8 || math.Abs(vals[1]-8) > 1e-8 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestTopKEigenSymEdgeCases(t *testing.T) {
	a, _ := matrix.FromRows([][]float64{{2, 0}, {0, 1}})
	if _, _, err := TopKEigenSym(a, -1); err == nil {
		t.Fatal("expected error for negative k")
	}
	vals, vecs, err := TopKEigenSym(a, 0)
	if err != nil || len(vals) != 0 || vecs.Cols() != 0 {
		t.Fatalf("k=0: %v %v %v", vals, vecs, err)
	}
	vals, _, err = TopKEigenSym(a, 10) // k > n clamps
	if err != nil || len(vals) != 2 {
		t.Fatalf("k>n: %v %v", vals, err)
	}
}

func TestTopKEigenSymLanczosPath(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 300 // above the dense cutoff
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(n - i)
	}
	a := symFromSpectrum(rng, vals)
	got, vecs, err := TopKEigenSym(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if math.Abs(got[i]-vals[i]) > 1e-6*float64(n) {
			t.Fatalf("lanczos vals = %v, want prefix of %v", got, vals[:3])
		}
	}
	if dev := Orthonormality(vecs); dev > 1e-6 {
		t.Fatalf("ritz vectors deviation %g", dev)
	}
}
