package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/matrix"
)

// Op applies a symmetric linear operator: dst = A*src. dst and src have
// length n and never alias. Using an operator rather than an explicit
// matrix lets Lanczos run on sparse similarity graphs (the PSC baseline)
// and on dense Gram matrices alike.
type Op func(dst, src []float64)

// MatVec adapts a dense symmetric matrix to an Op. The product is one
// DotBlock call — src against the whole row block — so it inherits the
// blocked engine's 1x4 micro-tiled inner loop; this is the dominant
// cost of every Lanczos iteration on dense bucket Laplacians.
func MatVec(a *matrix.Dense) Op {
	rows, cols, data := a.Rows(), a.Cols(), a.Data()
	return func(dst, src []float64) {
		matrix.DotBlock(src, 1, data, rows, cols, dst)
	}
}

// LanczosResult holds the k converged extremal eigenpairs: Values in
// descending order and Vectors as an n x k column matrix.
type LanczosResult struct {
	Values  []float64
	Vectors *matrix.Dense
	// Iterations is the Krylov subspace dimension actually built.
	Iterations int
}

// Lanczos computes the k algebraically largest eigenpairs of the
// symmetric operator op of dimension n. seed controls the start vector
// (any value is fine; it only needs a component along the wanted
// eigenvectors, which holds almost surely).
//
// Full reorthogonalization is used: DASC's per-bucket problems are small
// enough that robustness is worth the extra dot products, and the PSC
// baseline needs accurate extremal pairs on graphs with clustered
// spectra.
func Lanczos(op Op, n, k int, seed int64) (*LanczosResult, error) {
	if k <= 0 || n <= 0 {
		return nil, fmt.Errorf("linalg: Lanczos with n=%d k=%d", n, k)
	}
	if k > n {
		k = n
	}
	// Grow the Krylov subspace until the wanted Ritz pairs converge.
	// The residual of Ritz pair i is |beta_m * z_{m,i}| (last component
	// of the tridiagonal eigenvector scaled by the final off-diagonal),
	// so convergence is cheap to monitor.
	m := k*2 + 8
	if m > n {
		m = n
	}
	for {
		res, converged, err := lanczosOnce(op, n, k, m, seed)
		if err != nil {
			return nil, err
		}
		if converged || m >= n {
			return res, nil
		}
		m *= 2
		if m > n {
			m = n
		}
	}
}

// lanczosScratch is one iteration's pooled working set: the current
// and residual vectors plus the backing array the orthonormal basis
// vectors are carved from. Every slot is fully overwritten before it
// is read, so dirty pooled buffers are safe.
type lanczosScratch struct {
	v, w    []float64
	backing []float64 // m x n, basis vector j lives at [j*n:(j+1)*n]
}

var lanczosPool = sync.Pool{New: func() interface{} { return new(lanczosScratch) }}

// getLanczosScratch returns a pooled scratch sized for an m-step
// factorization of dimension n.
func getLanczosScratch(n, m int) *lanczosScratch {
	sc := lanczosPool.Get().(*lanczosScratch)
	if cap(sc.v) < n {
		sc.v = make([]float64, n)
		sc.w = make([]float64, n)
	}
	if cap(sc.backing) < m*n {
		sc.backing = make([]float64, m*n)
	}
	//lint:ignore poolescape deliberate ownership transfer: lanczosOnce, the only caller, defers lanczosPool.Put(sc) immediately after this returns
	return sc
}

// lanczosOnce builds an m-step Lanczos factorization with full
// reorthogonalization and extracts the top-k Ritz pairs, reporting
// whether all k residual bounds are below tolerance. All iteration
// scratch (v, w, the basis backing array) is pooled, so the per-call
// allocations are the returned Ritz pairs plus O(m) tridiagonal state —
// the property the per-bucket sparse solve counts on.
func lanczosOnce(op Op, n, k, m int, seed int64) (*LanczosResult, bool, error) {
	sc := getLanczosScratch(n, m)
	defer lanczosPool.Put(sc)
	rng := rand.New(rand.NewSource(seed + 0x9E3779B9))
	v := sc.v[:n]
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	matrix.Normalize(v)

	basis := make([][]float64, 0, m) // orthonormal Lanczos vectors
	alpha := make([]float64, 0, m)
	beta := make([]float64, 0, m) // beta[j] couples basis[j] and basis[j+1]
	exhausted := false            // invariant subspace found before m steps

	w := sc.w[:n]
	for j := 0; j < m; j++ {
		slot := sc.backing[j*n : (j+1)*n]
		copy(slot, v)
		basis = append(basis, slot)
		op(w, v)
		a := matrix.Dot(w, v)
		alpha = append(alpha, a)
		// w -= a*v + beta_{j-1} * v_{j-1}
		matrix.AXPY(-a, v, w)
		if j > 0 {
			matrix.AXPY(-beta[j-1], basis[j-1], w)
		}
		// Full reorthogonalization against the whole basis (twice is
		// enough by Kahan–Parlett).
		for pass := 0; pass < 2; pass++ {
			for _, q := range basis {
				c := matrix.Dot(w, q)
				if !matrix.IsZero(c) {
					matrix.AXPY(-c, q, w)
				}
			}
		}
		b := matrix.Norm2(w)
		if b < 1e-13 {
			exhausted = true
			break
		}
		if j == m-1 {
			break
		}
		beta = append(beta, b)
		for i := range v {
			v[i] = w[i] / b
		}
	}

	j := len(alpha)
	// Solve the j x j tridiagonal eigenproblem with tqli.
	d := append([]float64(nil), alpha...)
	e := make([]float64, j)
	for i := 1; i < j; i++ {
		e[i] = beta[i-1]
	}
	z := matrix.Identity(j)
	if err := tqli(d, e, z); err != nil {
		return nil, false, err
	}
	sortEigenDesc(d, z)

	if k > j {
		k = j
	}
	// Convergence: residual of Ritz pair i is |beta_{j-1} * z_{j-1,i}|.
	converged := true
	if exhausted || j >= n {
		converged = true
	} else {
		lastBeta := 0.0
		if len(beta) >= j-1 && j >= 1 {
			// beta[j-1] would couple to the (j+1)-th vector; it equals
			// the norm of the last residual w.
			lastBeta = matrix.Norm2(w)
		}
		scale := 1.0
		if len(d) > 0 {
			scale += math.Abs(d[0])
		}
		for i := 0; i < k; i++ {
			if math.Abs(lastBeta*z.At(j-1, i)) > 1e-9*scale {
				converged = false
				break
			}
		}
	}
	// Ritz vectors: X = V * Z[:, :k], where V stacks the Lanczos basis.
	vecs := matrix.NewDense(n, k)
	for col := 0; col < k; col++ {
		for row := 0; row < n; row++ {
			var s float64
			for l := 0; l < j; l++ {
				s += basis[l][row] * z.At(l, col)
			}
			vecs.Set(row, col, s)
		}
	}
	return &LanczosResult{Values: d[:k], Vectors: vecs, Iterations: j}, converged, nil
}

// PowerIteration computes the dominant eigenpair of op by repeated
// application; used for cheap spectral-radius estimates and as a test
// oracle for Lanczos.
func PowerIteration(op Op, n int, iters int, seed int64) (float64, []float64) {
	rng := rand.New(rand.NewSource(seed + 12345))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	matrix.Normalize(v)
	w := make([]float64, n)
	var lambda float64
	for it := 0; it < iters; it++ {
		op(w, v)
		lambda = matrix.Dot(w, v)
		if matrix.IsZero(matrix.Normalize(w)) {
			break
		}
		v, w = w, v
	}
	return lambda, v
}

// Orthonormality returns the largest deviation |<q_i, q_j> - delta_ij|
// over all column pairs of q — a diagnostic used by tests to validate
// eigenvector bases.
func Orthonormality(q *matrix.Dense) float64 {
	var worst float64
	for i := 0; i < q.Cols(); i++ {
		qi := q.Col(i)
		for j := i; j < q.Cols(); j++ {
			qj := q.Col(j)
			d := matrix.Dot(qi, qj)
			if i == j {
				d -= 1
			}
			if a := math.Abs(d); a > worst {
				worst = a
			}
		}
	}
	return worst
}
