// Package linalg implements the eigendecomposition machinery the paper
// relies on: Householder reduction of a symmetric matrix to tridiagonal
// form, an implicit-shift QL eigensolver on the tridiagonal form, a
// Lanczos iteration for large symmetric operators, and a Householder QR
// factorization. Together these reproduce the paper's §3.2 pipeline
// ("transform L into a symmetric tridiagonal matrix, then apply QR
// decomposition") without any external numeric library.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/matrix"
)

// ErrNoConvergence is returned when an iterative eigensolver exceeds
// its iteration budget.
var ErrNoConvergence = errors.New("linalg: eigensolver failed to converge")

// EigenSym computes the full eigendecomposition of a symmetric matrix.
// It returns the eigenvalues in descending order and a matrix whose
// columns are the corresponding orthonormal eigenvectors.
//
// The reduction is classic tred2 (Householder) followed by tqli
// (implicit-shift QL), both adapted to row-major storage.
func EigenSym(a *matrix.Dense) ([]float64, *matrix.Dense, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, nil, fmt.Errorf("linalg: EigenSym of non-square %dx%d", n, a.Cols())
	}
	if n == 0 {
		return nil, matrix.NewDense(0, 0), nil
	}
	if !a.IsSymmetric(1e-8 * (1 + a.MaxAbs())) {
		return nil, nil, errors.New("linalg: EigenSym requires a symmetric matrix")
	}
	z := a.Clone()
	d := make([]float64, n) // diagonal of tridiagonal form, then eigenvalues
	e := make([]float64, n) // sub-diagonal
	tred2(z, d, e)
	if err := tqli(d, e, z); err != nil {
		return nil, nil, err
	}
	sortEigenDesc(d, z)
	return d, z, nil
}

// tred2 reduces the symmetric matrix stored in z to tridiagonal form by
// Householder similarity transformations, accumulating the orthogonal
// transform in z. On return d holds the diagonal and e the subdiagonal
// (e[0] is unused and set to 0). Ported from the standard tred2
// routine, operating on row slices rather than At/Set accessors — this
// is the O(n^3) hot loop of the dense eigensolver.
func tred2(z *matrix.Dense, d, e []float64) {
	n := z.Rows()
	a := z.Data() // row-major: (i,j) = a[i*n+j]
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		ri := a[i*n:]
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(ri[k])
			}
			if matrix.IsZero(scale) {
				e[i] = ri[l]
			} else {
				for k := 0; k <= l; k++ {
					ri[k] /= scale
					h += ri[k] * ri[k]
				}
				f := ri[l]
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				ri[l] = f - g
				f = 0
				for j := 0; j <= l; j++ {
					rj := a[j*n:]
					rj[i] = ri[j] / h
					g = 0
					for k := 0; k <= j; k++ {
						g += rj[k] * ri[k]
					}
					for k := j + 1; k <= l; k++ {
						g += a[k*n+j] * ri[k]
					}
					e[j] = g / h
					f += e[j] * ri[j]
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = ri[j]
					g = e[j] - hh*f
					e[j] = g
					rj := a[j*n:]
					for k := 0; k <= j; k++ {
						rj[k] -= f*e[k] + g*ri[k]
					}
				}
			}
		} else {
			e[i] = ri[l]
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	for i := 0; i < n; i++ {
		l := i - 1
		ri := a[i*n:]
		if !matrix.IsZero(d[i]) {
			for j := 0; j <= l; j++ {
				var g float64
				for k := 0; k <= l; k++ {
					g += ri[k] * a[k*n+j]
				}
				for k := 0; k <= l; k++ {
					a[k*n+j] -= g * a[k*n+i]
				}
			}
		}
		d[i] = ri[i]
		ri[i] = 1
		for j := 0; j <= l; j++ {
			a[j*n+i] = 0
			ri[j] = 0
		}
	}
}

// tqli finds the eigenvalues and eigenvectors of a symmetric tridiagonal
// matrix (diagonal d, subdiagonal e with e[0] unused) by the implicit-
// shift QL method, rotating the accumulated transform z along. On return
// d holds eigenvalues and the columns of z the eigenvectors.
func tqli(d, e []float64, z *matrix.Dense) error {
	const maxIter = 50
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				//lint:ignore floatcmp the classic tqli convergence test: e[m] has underflowed exactly when adding it to dd is a no-op
				if math.Abs(e[m]) <= math.SmallestNonzeroFloat64*dd || math.Abs(e[m])+dd == dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter >= maxIter {
				return ErrNoConvergence
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if matrix.IsZero(r) {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				rows, cols := z.Rows(), z.Cols()
				zd := z.Data()
				for k := 0; k < rows; k++ {
					row := zd[k*cols:]
					f := row[i+1]
					row[i+1] = s*row[i] + c*f
					row[i] = c*row[i] - s*f
				}
			}
			if matrix.IsZero(r) && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

// sortEigenDesc sorts eigenvalues in descending order, permuting the
// eigenvector columns of z to match.
func sortEigenDesc(d []float64, z *matrix.Dense) {
	n := len(d)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return d[idx[a]] > d[idx[b]] })
	dOld := append([]float64(nil), d...)
	zOld := z.Clone()
	for newCol, oldCol := range idx {
		d[newCol] = dOld[oldCol]
		for r := 0; r < n; r++ {
			z.Set(r, newCol, zOld.At(r, oldCol))
		}
	}
}

// denseCutoff is the dimension at or below which TopKEigenSym always
// uses the full dense reduction: tred2+tqli on a 96x96 problem is
// cheaper than building a Krylov basis for it.
const denseCutoff = 96

// UsesLanczos reports whether TopKEigenSym routes an n x n problem with
// k wanted pairs to Lanczos rather than the full dense reduction —
// dense only when the matrix is small or most of the spectrum is
// wanted. Exported so the spectral solve engine can name the solver it
// is about to run without duplicating the policy.
func UsesLanczos(n, k int) bool { return n > denseCutoff && 3*k < n }

// TopKEigenSym returns the k largest eigenvalues of a symmetric matrix
// and the matrix of their eigenvectors (n x k, columns ordered by
// descending eigenvalue). For small matrices it uses the dense solver;
// for larger ones it runs Lanczos with full reorthogonalization, which
// is the "transform to tridiagonal, then QR" strategy of the paper.
func TopKEigenSym(a *matrix.Dense, k int) ([]float64, *matrix.Dense, error) {
	n := a.Rows()
	if k < 0 {
		return nil, nil, fmt.Errorf("linalg: negative k %d", k)
	}
	if k > n {
		k = n
	}
	if k == 0 {
		return nil, matrix.NewDense(n, 0), nil
	}
	if !UsesLanczos(n, k) {
		vals, vecs, err := EigenSym(a)
		if err != nil {
			return nil, nil, err
		}
		return vals[:k], firstCols(vecs, k), nil
	}
	lz, err := Lanczos(MatVec(a), n, k, 0)
	if err != nil {
		return nil, nil, err
	}
	return lz.Values, lz.Vectors, nil
}

func firstCols(m *matrix.Dense, k int) *matrix.Dense {
	out := matrix.NewDense(m.Rows(), k)
	for i := 0; i < m.Rows(); i++ {
		copy(out.Row(i), m.Row(i)[:k])
	}
	return out
}
