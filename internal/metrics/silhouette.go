package metrics

import (
	"repro/internal/matrix"
)

// Silhouette computes the mean silhouette coefficient of the labeled
// points: for each point, (b-a)/max(a,b) where a is its mean distance
// to its own cluster and b the smallest mean distance to another
// cluster. Values near 1 indicate tight, well-separated clusters; near
// 0, overlapping ones; negative, likely misassignment. O(N^2), so the
// harness samples at large N.
//
// Single-cluster labelings return 0 (the coefficient is undefined, and
// 0 is the conventional neutral value). Singleton clusters contribute
// 0 for their lone member, per the standard definition.
func Silhouette(points *matrix.Dense, labels []int) (float64, error) {
	_, members, err := centroids(points, labels)
	if err != nil {
		return 0, err
	}
	if len(members) <= 1 {
		return 0, nil
	}
	clusterOf := make([]int, points.Rows())
	for c, idxs := range members {
		for _, i := range idxs {
			clusterOf[i] = c
		}
	}
	var total float64
	n := points.Rows()
	meanDist := make([]float64, len(members))
	counts := make([]int, len(members))
	for i := 0; i < n; i++ {
		for c := range meanDist {
			meanDist[c] = 0
			counts[c] = 0
		}
		xi := points.Row(i)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			c := clusterOf[j]
			meanDist[c] += matrix.Dist(xi, points.Row(j))
			counts[c]++
		}
		own := clusterOf[i]
		if counts[own] == 0 {
			continue // singleton: contributes 0
		}
		a := meanDist[own] / float64(counts[own])
		b := -1.0
		for c := range meanDist {
			if c == own || counts[c] == 0 {
				continue
			}
			if d := meanDist[c] / float64(counts[c]); b < 0 || d < b {
				b = d
			}
		}
		if b < 0 {
			continue
		}
		max := a
		if b > max {
			max = b
		}
		if max > 0 {
			total += (b - a) / max
		}
	}
	return total / float64(n), nil
}
