package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestAccuracyPerfect(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2}
	pred := []int{5, 5, 9, 9, 1, 1} // same partition, renamed labels
	acc, err := Accuracy(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("accuracy = %v, want 1", acc)
	}
}

func TestAccuracyPartial(t *testing.T) {
	truth := []int{0, 0, 0, 1, 1, 1}
	pred := []int{0, 0, 1, 1, 1, 1} // one point of class 0 mislabeled
	acc, err := Accuracy(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-5.0/6.0) > 1e-12 {
		t.Fatalf("accuracy = %v, want 5/6", acc)
	}
}

func TestAccuracyDifferentClusterCounts(t *testing.T) {
	// More predicted clusters than classes: optimal matching picks the
	// best two.
	truth := []int{0, 0, 0, 1, 1, 1}
	pred := []int{0, 0, 2, 1, 1, 3}
	acc, err := Accuracy(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-4.0/6.0) > 1e-12 {
		t.Fatalf("accuracy = %v, want 4/6", acc)
	}
	// Fewer predicted clusters than classes.
	truth2 := []int{0, 1, 2, 3}
	pred2 := []int{0, 0, 1, 1}
	acc2, err := Accuracy(truth2, pred2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc2-0.5) > 1e-12 {
		t.Fatalf("accuracy = %v, want 0.5", acc2)
	}
}

func TestAccuracyErrors(t *testing.T) {
	if _, err := Accuracy([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := Accuracy(nil, nil); err == nil {
		t.Fatal("expected empty error")
	}
}

// Property: accuracy is symmetric in which labeling is truth, bounded
// in (0,1], and 1 when labelings are equal.
func TestPropAccuracy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(4)
		}
		ab, err1 := Accuracy(a, b)
		ba, err2 := Accuracy(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		self, err3 := Accuracy(a, a)
		if err3 != nil || self != 1 {
			return false
		}
		return math.Abs(ab-ba) < 1e-12 && ab > 0 && ab <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDaviesBouldinSeparatedVsOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	makeTwo := func(sep float64) (*matrix.Dense, []int) {
		pts := matrix.NewDense(40, 2)
		labels := make([]int, 40)
		for i := 0; i < 20; i++ {
			pts.Set(i, 0, rng.NormFloat64()*0.2)
			pts.Set(i, 1, rng.NormFloat64()*0.2)
			pts.Set(20+i, 0, sep+rng.NormFloat64()*0.2)
			pts.Set(20+i, 1, rng.NormFloat64()*0.2)
			labels[20+i] = 1
		}
		return pts, labels
	}
	far, lf := makeTwo(10)
	near, ln := makeTwo(0.5)
	dbiFar, err := DaviesBouldin(far, lf)
	if err != nil {
		t.Fatal(err)
	}
	dbiNear, err := DaviesBouldin(near, ln)
	if err != nil {
		t.Fatal(err)
	}
	if dbiFar >= dbiNear {
		t.Fatalf("DBI must reward separation: far=%v near=%v", dbiFar, dbiNear)
	}
}

func TestDaviesBouldinEdgeCases(t *testing.T) {
	pts, _ := matrix.FromRows([][]float64{{0, 0}, {1, 1}})
	// Single cluster: DBI defined as 0 here.
	dbi, err := DaviesBouldin(pts, []int{0, 0})
	if err != nil || dbi != 0 {
		t.Fatalf("single-cluster DBI = %v, %v", dbi, err)
	}
	// Coincident centroids yield +Inf ratio.
	pts2, _ := matrix.FromRows([][]float64{{0, 0}, {2, 2}, {0, 0}, {2, 2}})
	dbi2, err := DaviesBouldin(pts2, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dbi2, 1) {
		t.Fatalf("coincident centroids DBI = %v, want +Inf", dbi2)
	}
	if _, err := DaviesBouldin(pts, []int{0}); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestAverageSquaredError(t *testing.T) {
	pts, _ := matrix.FromRows([][]float64{{0}, {2}, {10}, {12}})
	labels := []int{0, 0, 1, 1}
	// Centroids 1 and 11; each point at squared distance 1.
	ase, err := AverageSquaredError(pts, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ase-1) > 1e-12 {
		t.Fatalf("ASE = %v, want 1", ase)
	}
	// Perfect clustering of coincident points: 0.
	pts2, _ := matrix.FromRows([][]float64{{1}, {1}, {5}, {5}})
	ase2, _ := AverageSquaredError(pts2, []int{0, 0, 1, 1})
	if ase2 != 0 {
		t.Fatalf("ASE = %v, want 0", ase2)
	}
	if _, err := AverageSquaredError(pts, []int{0}); err == nil {
		t.Fatal("expected mismatch error")
	}
}

// Property: ASE with the true per-cluster means is never worse than
// merging everything into one cluster.
func TestPropASESplitBeatsMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		pts := matrix.NewDense(n, 2)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			labels[i] = i % 2
			pts.Set(i, 0, float64(labels[i])*5+rng.NormFloat64())
			pts.Set(i, 1, rng.NormFloat64())
		}
		single := make([]int, n)
		aseSplit, err1 := AverageSquaredError(pts, labels)
		aseMerge, err2 := AverageSquaredError(pts, single)
		if err1 != nil || err2 != nil {
			return false
		}
		return aseSplit <= aseMerge+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFrobeniusRatio(t *testing.T) {
	full, _ := matrix.FromRows([][]float64{{3, 4}, {0, 0}})
	approx, _ := matrix.FromRows([][]float64{{3, 0}, {0, 0}})
	r, err := FrobeniusRatio(approx, full)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.6) > 1e-12 {
		t.Fatalf("ratio = %v, want 0.6", r)
	}
	if _, err := FrobeniusRatio(matrix.NewDense(1, 1), full); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := FrobeniusRatio(matrix.NewDense(2, 2), matrix.NewDense(2, 2)); err == nil {
		t.Fatal("expected zero-norm error")
	}
}

func TestSilhouette(t *testing.T) {
	// Two tight, far-apart clusters: coefficient near 1.
	pts, _ := matrix.FromRows([][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{10, 10}, {10.1, 10}, {10, 10.1},
	})
	labels := []int{0, 0, 0, 1, 1, 1}
	s, err := Silhouette(pts, labels)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.9 {
		t.Fatalf("separated silhouette = %v, want ~1", s)
	}
	// Deliberately crossed labels: negative.
	bad, err := Silhouette(pts, []int{0, 1, 0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if bad >= s {
		t.Fatalf("crossed labels silhouette %v must be below %v", bad, s)
	}
	// Single cluster: neutral 0.
	one, err := Silhouette(pts, []int{0, 0, 0, 0, 0, 0})
	if err != nil || one != 0 {
		t.Fatalf("single cluster: %v %v", one, err)
	}
	// Singletons do not crash.
	if _, err := Silhouette(pts, []int{0, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := Silhouette(pts, []int{0}); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestHungarianKnownMatrix(t *testing.T) {
	// Max-weight matching of [[1,2],[3,4]] is 2+3=5 (anti-diagonal).
	w := [][]float64{{1, 2}, {3, 4}}
	if got := hungarianMax(w); got != 5 {
		t.Fatalf("hungarianMax = %v, want 5", got)
	}
	if hungarianMax(nil) != 0 {
		t.Fatal("empty matrix must give 0")
	}
}

// Property: Hungarian result is at least as good as the greedy
// diagonal assignment and never exceeds the sum of row maxima.
func TestPropHungarianBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		w := make([][]float64, n)
		var diag, rowMax float64
		for i := range w {
			w[i] = make([]float64, n)
			best := 0.0
			for j := range w[i] {
				w[i][j] = rng.Float64() * 10
				if w[i][j] > best {
					best = w[i][j]
				}
			}
			diag += w[i][i]
			rowMax += best
		}
		got := hungarianMax(w)
		return got >= diag-1e-9 && got <= rowMax+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
