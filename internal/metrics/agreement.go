package metrics

import (
	"math"

	"repro/internal/matrix"
)

// This file adds the standard external clustering-agreement measures
// beyond the paper's accuracy metric: purity, normalized mutual
// information, and the adjusted Rand index. They are used by the
// extended evaluation harness to cross-check that accuracy shapes
// (Figure 3) are not artifacts of the Hungarian matching.

// contingency builds the cluster-by-class count table plus marginals.
func contingency(truth, pred []int) (table [][]float64, rowSum, colSum []float64, n float64, err error) {
	if len(truth) != len(pred) {
		return nil, nil, nil, 0, ErrLabelMismatch
	}
	if len(truth) == 0 {
		return nil, nil, nil, 0, errEmpty
	}
	tIdx := indexLabels(truth)
	pIdx := indexLabels(pred)
	table = make([][]float64, len(pIdx))
	for i := range table {
		table[i] = make([]float64, len(tIdx))
	}
	for i := range truth {
		table[pIdx[pred[i]]][tIdx[truth[i]]]++
	}
	rowSum = make([]float64, len(pIdx))
	colSum = make([]float64, len(tIdx))
	for r, row := range table {
		for c, v := range row {
			rowSum[r] += v
			colSum[c] += v
		}
	}
	return table, rowSum, colSum, float64(len(truth)), nil
}

// Purity is the fraction of points that belong to the majority class of
// their cluster. Unlike Accuracy it allows many clusters to map to one
// class, so it never decreases when clusters split.
func Purity(truth, pred []int) (float64, error) {
	table, _, _, n, err := contingency(truth, pred)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, row := range table {
		best := 0.0
		for _, v := range row {
			if v > best {
				best = v
			}
		}
		total += best
	}
	return total / n, nil
}

// NMI returns the normalized mutual information between the two
// labelings, I(T;P)/sqrt(H(T) H(P)), in [0, 1]. Degenerate labelings
// with zero entropy on either side yield 1 when identical in structure
// (both single-cluster) and 0 otherwise.
func NMI(truth, pred []int) (float64, error) {
	table, rowSum, colSum, n, err := contingency(truth, pred)
	if err != nil {
		return 0, err
	}
	var mi, ht, hp float64
	for r, row := range table {
		for c, v := range row {
			if matrix.IsZero(v) {
				continue
			}
			mi += v / n * math.Log(v*n/(rowSum[r]*colSum[c]))
		}
	}
	for _, v := range rowSum {
		if v > 0 {
			hp -= v / n * math.Log(v/n)
		}
	}
	for _, v := range colSum {
		if v > 0 {
			ht -= v / n * math.Log(v/n)
		}
	}
	if matrix.IsZero(ht) && matrix.IsZero(hp) {
		return 1, nil // both labelings are a single cluster
	}
	if matrix.IsZero(ht) || matrix.IsZero(hp) {
		return 0, nil
	}
	return mi / math.Sqrt(ht*hp), nil
}

// AdjustedRand returns the adjusted Rand index between the labelings:
// 1 for identical partitions, ~0 for independent ones, negative for
// worse-than-chance agreement.
func AdjustedRand(truth, pred []int) (float64, error) {
	table, rowSum, colSum, n, err := contingency(truth, pred)
	if err != nil {
		return 0, err
	}
	choose2 := func(x float64) float64 { return x * (x - 1) / 2 }
	var sumCells, sumRows, sumCols float64
	for r, row := range table {
		sumRows += choose2(rowSum[r])
		for _, v := range row {
			sumCells += choose2(v)
		}
	}
	for _, v := range colSum {
		sumCols += choose2(v)
	}
	total := choose2(n)
	if matrix.IsZero(total) {
		return 1, nil // a single point: partitions trivially agree
	}
	expected := sumRows * sumCols / total
	maxIdx := (sumRows + sumCols) / 2
	if matrix.ApproxEqual(maxIdx, expected, 0) {
		return 1, nil // both partitions degenerate identically
	}
	return (sumCells - expected) / (maxIdx - expected), nil
}

var errEmpty = errEmptyType{}

type errEmptyType struct{}

func (errEmptyType) Error() string { return "metrics: empty labeling" }
