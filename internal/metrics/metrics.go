// Package metrics implements the paper's four evaluation metrics
// (§5.3): clustering accuracy against ground truth (via an optimal
// cluster-to-class assignment computed with the Hungarian algorithm),
// the Davies–Bouldin index (Eq. 20), average squared error (Eq. 21),
// and the Frobenius-norm ratio between approximated and full Gram
// matrices (Eqs. 22–24).
package metrics

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/matrix"
)

// ErrLabelMismatch reports label slices of unequal length.
var ErrLabelMismatch = errors.New("metrics: label slices differ in length")

// Accuracy returns the fraction of points whose predicted cluster maps
// to their true class under the best one-to-one cluster↔class
// assignment (maximum-weight matching on the contingency table). This
// is the "ratio of correctly clustered points" of Figure 3.
func Accuracy(truth, pred []int) (float64, error) {
	if len(truth) != len(pred) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLabelMismatch, len(truth), len(pred))
	}
	if len(truth) == 0 {
		return 0, errors.New("metrics: empty labeling")
	}
	tIdx := indexLabels(truth)
	pIdx := indexLabels(pred)
	// Contingency counts: rows = predicted clusters, cols = true classes.
	rows, cols := len(pIdx), len(tIdx)
	n := rows
	if cols > n {
		n = cols
	}
	counts := make([][]float64, n)
	for i := range counts {
		counts[i] = make([]float64, n)
	}
	for i := range truth {
		counts[pIdx[pred[i]]][tIdx[truth[i]]]++
	}
	matched := hungarianMax(counts)
	return matched / float64(len(truth)), nil
}

// indexLabels maps arbitrary label values to dense indices.
func indexLabels(labels []int) map[int]int {
	idx := make(map[int]int)
	for _, l := range labels {
		if _, ok := idx[l]; !ok {
			idx[l] = len(idx)
		}
	}
	return idx
}

// hungarianMax returns the value of a maximum-weight perfect matching
// on the square weight matrix w, via the O(n^3) potentials formulation
// of the Hungarian algorithm run on costs -w.
func hungarianMax(w [][]float64) float64 {
	n := len(w)
	if n == 0 {
		return 0
	}
	// Standard shortest-augmenting-path Hungarian on cost = -w,
	// 1-indexed internal arrays.
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j] = row matched to column j
	way := make([]int, n+1) // back-pointers along the augmenting path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := -w[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	var total float64
	for j := 1; j <= n; j++ {
		if p[j] != 0 {
			total += w[p[j]-1][j-1]
		}
	}
	return total
}

// DaviesBouldin computes the DBI of Eq. 20 for the labeled points:
// the mean over clusters of the worst (sigma_i + sigma_j) / d(c_i, c_j)
// ratio, where sigma is the average distance of cluster members to
// their centroid. Lower is better. Clusters present in labels but
// empty after filtering are skipped; a single cluster yields 0.
func DaviesBouldin(points *matrix.Dense, labels []int) (float64, error) {
	cents, members, err := centroids(points, labels)
	if err != nil {
		return 0, err
	}
	c := len(members)
	if c <= 1 {
		return 0, nil
	}
	sigma := make([]float64, c)
	for k, idxs := range members {
		var s float64
		for _, i := range idxs {
			s += matrix.Dist(points.Row(i), cents.Row(k))
		}
		sigma[k] = s / float64(len(idxs))
	}
	var sum float64
	for i := 0; i < c; i++ {
		worst := 0.0
		for j := 0; j < c; j++ {
			if i == j {
				continue
			}
			d := matrix.Dist(cents.Row(i), cents.Row(j))
			var r float64
			if matrix.IsZero(d) {
				r = math.Inf(1)
			} else {
				r = (sigma[i] + sigma[j]) / d
			}
			if r > worst {
				worst = r
			}
		}
		sum += worst
	}
	return sum / float64(c), nil
}

// AverageSquaredError computes the ASE of Eq. 21: the mean over all
// points of the squared Euclidean distance to the assigned cluster
// centroid. Lower is better.
func AverageSquaredError(points *matrix.Dense, labels []int) (float64, error) {
	cents, members, err := centroids(points, labels)
	if err != nil {
		return 0, err
	}
	var total float64
	for k, idxs := range members {
		for _, i := range idxs {
			total += matrix.SqDist(points.Row(i), cents.Row(k))
		}
	}
	return total / float64(points.Rows()), nil
}

// centroids groups point indices by label and computes per-cluster
// means. Labels may be arbitrary ints; the returned slices are indexed
// by dense cluster id in order of first appearance.
func centroids(points *matrix.Dense, labels []int) (*matrix.Dense, [][]int, error) {
	if points.Rows() != len(labels) {
		return nil, nil, fmt.Errorf("%w: %d points vs %d labels", ErrLabelMismatch, points.Rows(), len(labels))
	}
	if len(labels) == 0 {
		return nil, nil, errors.New("metrics: empty labeling")
	}
	idx := indexLabels(labels)
	members := make([][]int, len(idx))
	for i, l := range labels {
		k := idx[l]
		members[k] = append(members[k], i)
	}
	cents := matrix.NewDense(len(idx), points.Cols())
	for k, idxs := range members {
		row := cents.Row(k)
		for _, i := range idxs {
			for j, v := range points.Row(i) {
				row[j] += v
			}
		}
		matrix.ScaleVec(1/float64(len(idxs)), row)
	}
	return cents, members, nil
}

// FrobeniusRatio returns Fnorm(approx)/Fnorm(full) (Eq. 22), the
// paper's Figure 5 measure of how much of the Gram matrix's energy the
// bucketed approximation retains. A full matrix of norm zero yields an
// error.
func FrobeniusRatio(approx, full *matrix.Dense) (float64, error) {
	if approx.Rows() != full.Rows() || approx.Cols() != full.Cols() {
		return 0, fmt.Errorf("metrics: shape mismatch %dx%d vs %dx%d",
			approx.Rows(), approx.Cols(), full.Rows(), full.Cols())
	}
	fn := full.Frobenius()
	if matrix.IsZero(fn) {
		return 0, errors.New("metrics: full matrix has zero Frobenius norm")
	}
	return approx.Frobenius() / fn, nil
}
