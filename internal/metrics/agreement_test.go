package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPurity(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	if p, err := Purity(truth, []int{5, 5, 7, 7}); err != nil || p != 1 {
		t.Fatalf("perfect purity = %v, %v", p, err)
	}
	// Splitting a cluster cannot hurt purity.
	split, _ := Purity(truth, []int{0, 1, 2, 3})
	if split != 1 {
		t.Fatalf("singleton purity = %v, want 1", split)
	}
	mixed, _ := Purity(truth, []int{0, 0, 0, 0})
	if mixed != 0.5 {
		t.Fatalf("one-cluster purity = %v, want 0.5", mixed)
	}
	if _, err := Purity(nil, nil); err == nil {
		t.Fatal("expected error for empty labels")
	}
	if _, err := Purity([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("expected error for mismatch")
	}
}

func TestNMI(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	if v, err := NMI(truth, []int{9, 9, 4, 4}); err != nil || math.Abs(v-1) > 1e-12 {
		t.Fatalf("identical partitions NMI = %v, %v", v, err)
	}
	// Single-cluster prediction carries no information.
	if v, _ := NMI(truth, []int{0, 0, 0, 0}); v != 0 {
		t.Fatalf("single-cluster NMI = %v, want 0", v)
	}
	// Both single-cluster: defined as 1.
	if v, _ := NMI([]int{0, 0}, []int{3, 3}); v != 1 {
		t.Fatalf("degenerate NMI = %v, want 1", v)
	}
}

func TestAdjustedRand(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	if v, err := AdjustedRand(truth, []int{7, 7, 8, 8}); err != nil || math.Abs(v-1) > 1e-12 {
		t.Fatalf("identical ARI = %v, %v", v, err)
	}
	// Anti-correlated-ish labeling gives low/negative ARI.
	v, err := AdjustedRand([]int{0, 0, 1, 1}, []int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v > 0 {
		t.Fatalf("crossed ARI = %v, want <= 0", v)
	}
	if v, _ := AdjustedRand([]int{0}, []int{5}); v != 1 {
		t.Fatal("single point must give ARI 1")
	}
}

// Property: all agreement measures are symmetric-bounded and maximal on
// identical partitions.
func TestPropAgreementMeasures(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(4)
		}
		p, err1 := Purity(a, b)
		nmi, err2 := NMI(a, b)
		ari, err3 := AdjustedRand(a, b)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		if p < 0 || p > 1 || nmi < -1e-12 || nmi > 1+1e-12 || ari > 1+1e-12 {
			return false
		}
		selfNMI, _ := NMI(a, a)
		selfARI, _ := AdjustedRand(a, a)
		return math.Abs(selfNMI-1) < 1e-9 && math.Abs(selfARI-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: NMI is symmetric in its arguments.
func TestPropNMISymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(3)
			b[i] = rng.Intn(5)
		}
		ab, err1 := NMI(a, b)
		ba, err2 := NMI(b, a)
		return err1 == nil && err2 == nil && math.Abs(ab-ba) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
