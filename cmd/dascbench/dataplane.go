package main

// The MapReduce data-plane benchmarks: the k-way merge shuffle against
// the concat+stable-sort it replaced, the binary frame codec round
// trip, and the end-to-end shuffle-heavy TCP job under both the
// pipelined frame protocol and the legacy lock-step gob configuration
// (the pre-PR data plane, kept addressable via TCPConfig for replay).

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/mapreduce"
)

// addFunc matches run()'s benchmark registrar.
type addFunc func(name string, acc, gramfrac float64, f func()) *Result

// benchDataPlane appends the data-plane entries to the report.
func benchDataPlane(add addFunc, quick bool) error {
	// Shuffle microbench: 32 map tasks' sorted runs of 1024 small pairs.
	runs := sortedRuns(32, 1024)
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	add("shuffle/merge", 0, 0, func() { mapreduce.MergeRuns(runs) })
	add("shuffle/concat-sort", 0, 0, func() {
		concat := make([]mapreduce.Pair, 0, total)
		for _, r := range runs {
			concat = append(concat, r...)
		}
		sort.SliceStable(concat, func(i, j int) bool { return concat[i].Key < concat[j].Key })
	})

	// Spill shuffle A/B: the same shuffle-heavy job through the Local
	// executor fully in memory and with a budget small enough to force
	// file-backed runs on every map task, so the delta is the price of
	// the out-of-core merge path.
	spillInput := make([]mapreduce.Pair, 512)
	for i := range spillInput {
		spillInput[i] = mapreduce.Pair{Key: strconv.Itoa(i), Value: []byte{byte(i)}}
	}
	inmemJob := shuffleJob("dascbench/shuffle-inmem")
	spillJob := shuffleJob("dascbench/shuffle-spill")
	spillJob.SpillBytes = 64 << 10
	compJob := shuffleJob("dascbench/shuffle-spill-comp")
	compJob.SpillBytes = 64 << 10
	compJob.Compress = true
	for _, sj := range []struct {
		name string
		job  *mapreduce.Job
	}{
		{"shuffle/local-inmem", inmemJob},
		{"shuffle/local-spill", spillJob},
		{"shuffle/local-spill-comp", compJob},
	} {
		var ctr *mapreduce.Counters
		var jobErr error
		r := add(sj.name, 0, 0, func() {
			if _, c, err := (&mapreduce.Local{}).Run(sj.job, spillInput); err != nil {
				jobErr = err
			} else {
				ctr = c
			}
		})
		if jobErr != nil {
			return jobErr
		}
		r.ShuffleBytes = ctr.ShuffleBytes
		r.SpillBytes = ctr.SpillBytes
		r.CompressedBytes = ctr.CompressedBytes
		if raw := ctr.SpillBytes + ctr.CompressedBytes; raw > 0 && sj.job.Compress {
			r.CompressRatio = float64(ctr.SpillBytes) / float64(raw)
		}
	}

	// Frame codec round trip over one run's worth of records, plain and
	// through the v3 flate wrapper; the ratio is compressed/raw.
	var wireErr error
	add("wire/encode", 0, 0, func() {
		if _, err := mapreduce.WireRoundTrip(runs[0]); err != nil && wireErr == nil {
			wireErr = err
		}
	})
	if wireErr != nil {
		return wireErr
	}
	var wireSize, rawSize int
	r := add("wire/encode-comp", 0, 0, func() {
		var err error
		if wireSize, rawSize, err = mapreduce.WireRoundTripOpts(runs[0], true); err != nil && wireErr == nil {
			wireErr = err
		}
	})
	if wireErr != nil {
		return wireErr
	}
	r.CompressedBytes = int64(rawSize - wireSize)
	if rawSize > 0 {
		r.CompressRatio = float64(wireSize) / float64(rawSize)
	}

	// End-to-end shuffle-heavy TCP job: many small pairs, 4 reducers,
	// 2 workers — the acceptance workload for the pipelined wire.
	nInput := 2048
	if quick {
		nInput = 512
	}
	input := make([]mapreduce.Pair, nInput)
	for i := range input {
		input[i] = mapreduce.Pair{Key: strconv.Itoa(i), Value: []byte{byte(i)}}
	}
	configs := []struct {
		name     string
		cfg      mapreduce.TCPConfig
		compress bool
	}{
		{"tcp/pipeline", mapreduce.TCPConfig{}, false},
		{"tcp/pipeline-comp", mapreduce.TCPConfig{}, true},
		{"tcp/lockstep-gob", mapreduce.TCPConfig{
			MaxInFlight:    1,
			MaxWireVersion: mapreduce.WireVersionGob,
		}, false},
	}
	for _, c := range configs {
		job := shuffleJob("dascbench/" + c.name)
		job.Compress = c.compress
		mapreduce.Register(job)
		if err := benchTCPJob(add, c.name, c.cfg, job, input); err != nil {
			return err
		}
	}
	return nil
}

// shuffleJob emits 32 small records per input under rotating keys, so
// nearly all of the job's cost is shuffle traffic.
func shuffleJob(name string) *mapreduce.Job {
	const fanout = 32
	return &mapreduce.Job{
		Name:        name,
		NumReducers: 4,
		SplitSize:   64,
		Map: func(key string, value []byte, emit mapreduce.Emit) error {
			base, err := strconv.Atoi(key)
			if err != nil {
				return err
			}
			for i := 0; i < fanout; i++ {
				emit(fmt.Sprintf("k%04d", (base*fanout+i)%997), value)
			}
			return nil
		},
		Reduce: func(key string, values [][]byte, emit mapreduce.Emit) error {
			emit(key, []byte(strconv.Itoa(len(values))))
			return nil
		},
	}
}

// benchTCPJob times job over a fresh 2-worker cluster in configuration
// cfg, tearing the cluster down afterwards.
func benchTCPJob(add addFunc, name string, cfg mapreduce.TCPConfig, job *mapreduce.Job, input []mapreduce.Pair) error {
	cfg.Addr = "127.0.0.1:0"
	cfg.MinWorkers = 2
	m, err := mapreduce.NewMasterTCP(cfg)
	if err != nil {
		return err
	}
	defer func() { _ = m.Close() }()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A clean master shutdown surfaces as a nil or EOF return.
			_ = mapreduce.RunWorker(m.Addr())
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.ConnectedWorkers() < 2 {
		if time.Now().After(deadline) {
			return fmt.Errorf("dascbench: %s workers did not join", name)
		}
		time.Sleep(time.Millisecond)
	}
	var runErr error
	var ctr *mapreduce.Counters
	r := add(name, 0, 0, func() {
		if _, c, err := m.Run(job, input); err != nil && runErr == nil {
			runErr = err
		} else {
			ctr = c
		}
	})
	if runErr != nil {
		return runErr
	}
	r.ShuffleBytes = ctr.ShuffleBytes
	r.CompressedBytes = ctr.CompressedBytes
	r.CompressNanos = ctr.CompressNanos
	if raw := ctr.WireBytesOut + ctr.WireBytesIn + ctr.CompressedBytes; job.Compress && raw > 0 {
		r.CompressRatio = float64(ctr.WireBytesOut+ctr.WireBytesIn) / float64(raw)
	}
	if err := m.Close(); err != nil {
		return err
	}
	wg.Wait()
	return nil
}

// sortedRuns builds nRuns key-sorted runs of size pairs each — the
// shape map tasks hand the merge shuffle.
func sortedRuns(nRuns, size int) [][]mapreduce.Pair {
	runs := make([][]mapreduce.Pair, nRuns)
	for r := range runs {
		run := make([]mapreduce.Pair, size)
		for i := range run {
			run[i] = mapreduce.Pair{
				Key:   fmt.Sprintf("k%04d", ((r*size+i)*2654435761)%997),
				Value: []byte{byte(i)},
			}
		}
		sort.SliceStable(run, func(x, y int) bool { return run[x].Key < run[y].Key })
		runs[r] = run
	}
	return runs
}
