package main

// The per-bucket solve-engine benchmarks: one bucket-sized problem
// through spectral.ClusterBucket on all three engine policies — the
// dense eigensolve, the thresholded-CSR sparse Lanczos, and the
// embedded path (RFF transform + k-means, no Gram) at two embedding
// widths — on identical blob data whose measured fill sits well under
// the sparse ceiling. Each non-dense entry's gramfrac records its
// working-set bytes as a fraction of the dense 4n², so successive BENCH
// files track both the speedup and the compression.

import (
	"fmt"
	"math/rand"

	"repro/internal/embed"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/spectral"
)

// solveBlobs builds k tight, well-separated Gaussian blobs: with a unit
// bandwidth and ε = 1e-4, cross-blob similarities threshold away and
// fill lands near 1/k.
func solveBlobs(seed int64, k, per, d int, sep, noise float64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	pts := matrix.NewDense(k*per, d)
	for c := 0; c < k; c++ {
		for i := 0; i < per; i++ {
			row := pts.Row(c*per + i)
			for j := range row {
				row[j] = float64(c)*sep + noise*rng.NormFloat64()
			}
		}
	}
	return pts
}

// benchSolve appends the solve-engine entries to the report.
func benchSolve(add addFunc, quick bool) error {
	per := 192 // 8 blobs x 192 = 1536 points, the mid-bucket regime
	if quick {
		per = 64
	}
	pts := solveBlobs(17, 8, per, 16, 14, 0.3)
	n := pts.Rows()
	indices := make([]int, n)
	for i := range indices {
		indices[i] = i
	}
	kf := kernel.NewGaussian(1.0)
	denseCfg := spectral.EngineConfig{K: 8, Seed: 1}
	sparseCfg := spectral.EngineConfig{K: 8, Seed: 1, SparseCutoff: 256, Epsilon: 1e-4}

	// One untimed pass per config pins the policy and the storage ratio
	// before the timed loops.
	var buf []float64
	_, denseStats, err := spectral.ClusterBucket(pts, indices, kf, denseCfg, &buf)
	if err != nil {
		return err
	}
	if denseStats.Solver == spectral.SolverSparseLanczos {
		return fmt.Errorf("dascbench: dense config chose %s", denseStats.Solver)
	}
	_, sparseStats, err := spectral.ClusterBucket(pts, indices, kf, sparseCfg, &buf)
	if err != nil {
		return err
	}
	if sparseStats.Solver != spectral.SolverSparseLanczos {
		return fmt.Errorf("dascbench: sparse config chose %s (fill %.3f)",
			sparseStats.Solver, sparseStats.Fill)
	}
	gramFrac := float64(sparseStats.GramBytes) / float64(denseStats.GramBytes)

	var solveErr error
	add("solve/dense", 0, 0, func() {
		if _, _, err := spectral.ClusterBucket(pts, indices, kf, denseCfg, &buf); err != nil && solveErr == nil {
			solveErr = err
		}
	})
	add("solve/sparse", 0, gramFrac, func() {
		if _, _, err := spectral.ClusterBucket(pts, indices, kf, sparseCfg, &buf); err != nil && solveErr == nil {
			solveErr = err
		}
	})

	// The embedded policy at two embedding widths: same bucket, same
	// kernel bandwidth, solve replaced by transform + k-means.
	for _, dim := range []int{32, 64} {
		emb, err := embed.NewRFF(pts.Cols(), dim, 1.0, 1)
		if err != nil {
			return err
		}
		embCfg := spectral.EngineConfig{K: 8, Seed: 1, Embedder: emb, EmbedCutoff: 256}
		_, embStats, err := spectral.ClusterBucket(pts, indices, kf, embCfg, &buf)
		if err != nil {
			return err
		}
		if embStats.Solver != spectral.SolverEmbedded {
			return fmt.Errorf("dascbench: embedded config chose %s", embStats.Solver)
		}
		embFrac := float64(embStats.GramBytes) / float64(denseStats.GramBytes)
		add(fmt.Sprintf("solve/embedded-d%d", dim), 0, embFrac, func() {
			if _, _, err := spectral.ClusterBucket(pts, indices, kf, embCfg, &buf); err != nil && solveErr == nil {
				solveErr = err
			}
		})
	}
	if solveErr != nil {
		return solveErr
	}
	fmt.Printf("solve fill: sparse %.4f (nnz %d), csr/dense bytes %.4f\n",
		sparseStats.Fill, sparseStats.NNZ, gramFrac)
	return nil
}
