package main

// The -scale mode: the out-of-core million-point run (ISSUE §5.2 at
// full width). It streams the Eq.-15 corpus through the two-pass dense
// vectorizer straight into shard files, clusters the shards with the
// sharded MapReduce driver over a spill-enabled TCP cluster, and
// replays the measured bucket structure through the EMR simulator with
// the disk-cost model on. Nothing in the process ever holds the corpus,
// the sparse tf-idf matrix, or the dense dataset in memory at once, so
// the recorded peak RSS is the out-of-core working set.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/emr"
	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/shard"
)

// benchScale appends the out-of-core entries to rep. n is the corpus
// size, dir the shard directory ("" = temp), spill the shuffle budget.
func benchScale(rep *Report, n int, dir string, spill int64) error {
	const f = 11    // paper §5.2: keep the top-11 terms per document
	const dims = 11 // and represent every document in d = 11 dimensions

	if dir == "" {
		tmp, err := os.MkdirTemp("", "dasc-scale-")
		if err != nil {
			return err
		}
		defer func() { _ = os.RemoveAll(tmp) }()
		dir = tmp
	}

	// Phase 1: corpus -> dense rows -> shard files, all streaming.
	ccfg := corpus.Config{NumDocs: n, Seed: 1, VocabSize: 8192}
	labels := make([]int, 0, n)
	w, err := shard.NewWriter(dir, dims, shard.DefaultRowsPerShard)
	if err != nil {
		return err
	}
	start := time.Now()
	meta, err := corpus.StreamDense(ccfg, f, dims, 1, func(row []float64, label int) error {
		labels = append(labels, label)
		return w.Append(row)
	})
	if err != nil {
		_ = w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	shardNs := time.Since(start).Nanoseconds()
	var shardBytes int64
	if err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			shardBytes += info.Size()
		}
		return err
	}); err != nil {
		return err
	}
	// The batch pipeline would hold the N x |vocab| dense tf-idf
	// matrix (plus the HTML corpus itself); that matrix alone is the
	// avoided footprint.
	inmem := int64(n) * int64(meta.Terms) * 8
	rep.Results = append(rep.Results, Result{
		Name: "scale/shard-write", NsPerOp: shardNs, N: int64(n),
		ShardReadBytes: 0, InMemoryBytes: inmem, PeakRSSBytes: peakRSS(),
	})
	fmt.Printf("%-24s %12d ns  N=%d  terms=%d  shards=%dB  batch-would-need=%dB\n",
		"scale/shard-write", shardNs, n, meta.Terms, shardBytes, inmem)

	// Phase 2: sharded DASC over a spill-enabled 2-worker TCP cluster,
	// once on each data plane — plain and compressed — so every report
	// carries the A/B. Embed mode keeps the largest merged buckets
	// dot-product-bound so the solve stage's memory stays flat as N
	// grows.
	var res *core.Result
	for _, plane := range []struct {
		name     string
		compress bool
	}{{"scale/sharded-tcp", false}, {"scale/sharded-tcp-comp", true}} {
		cfg := core.Config{Seed: 1, SpillBytes: spill, EmbedDim: 64, EmbedCutoff: 2048,
			Compression: plane.compress}
		wall, r, err := runShardedTCP(dir, cfg)
		if err != nil {
			return err
		}
		res = r
		recall := sampledPairRecall(labels, res.Labels, 500_000)
		ctr := res.MapReduce
		entry := Result{
			Name: plane.name, NsPerOp: wall, N: int64(n), Acc: recall,
			ShuffleBytes:    ctr.ShuffleBytes,
			SpillBytes:      ctr.SpillBytes,
			ShardReadBytes:  ctr.ShardReadBytes,
			ShardReadOps:    ctr.ShardReadOps,
			CoalescedReads:  ctr.ShardCoalescedReads,
			CompressedBytes: ctr.CompressedBytes,
			CompressNanos:   ctr.CompressNanos,
			PeakRSSBytes:    peakRSS(),
		}
		if raw := ctr.SpillBytes + ctr.CompressedBytes; plane.compress && raw > 0 {
			entry.CompressRatio = float64(ctr.SpillBytes) / float64(raw)
		}
		rep.Results = append(rep.Results, entry)
		fmt.Printf("%-24s %12d ns  clusters=%d buckets=%d spill=%dB saved=%dB shard-read=%dB ops=%d coalesced=%d recall=%.3f rss=%dB\n",
			plane.name, wall, res.Clusters, len(res.Buckets),
			ctr.SpillBytes, ctr.CompressedBytes, ctr.ShardReadBytes,
			ctr.ShardReadOps, ctr.ShardCoalescedReads, recall, peakRSS())
	}

	// Phase 3: replay the measured bucket structure on the EMR
	// simulator with the out-of-core disk model (paper Table 3 shape,
	// 64 nodes). Only the bucket sizes matter to the cost model.
	part := &lsh.Partition{}
	for _, b := range res.Buckets {
		part.Buckets = append(part.Buckets, lsh.Bucket{
			Signature: b.Signature, Indices: make([]int, b.Size),
		})
	}
	for _, plane := range []struct {
		name     string
		compress bool
	}{{"scale/emr-sim", false}, {"scale/emr-sim-comp", true}} {
		fcfg := core.Config{Seed: 1, SpillBytes: spill, EmbedDim: 64, EmbedCutoff: 2048,
			Compression: plane.compress}
		if fcfg.K == 0 {
			fcfg.K = analytic.CategoryLaw(n)
		}
		flow := core.BuildFlowSharded(part, fcfg, n, dims, 0)
		c, err := emr.NewCluster(64)
		if err != nil {
			return err
		}
		frep, err := c.RunJobFlow(flow)
		if err != nil {
			return err
		}
		simNs := int64(frep.TotalTime * 1e9)
		rep.Results = append(rep.Results, Result{
			Name: plane.name, NsPerOp: simNs, N: int64(n),
			DiskBytes: frep.TotalDiskBytes,
		})
		fmt.Printf("%-24s %12d ns  disk=%dB\n", plane.name, simNs, frep.TotalDiskBytes)
	}
	return nil
}

// runShardedTCP clusters the shard directory over a fresh spill-enabled
// 2-worker TCP cluster and returns the wall time and result.
func runShardedTCP(dir string, cfg core.Config) (int64, *core.Result, error) {
	m, err := mapreduce.NewMaster("127.0.0.1:0", 2)
	if err != nil {
		return 0, nil, err
	}
	defer func() { _ = m.Close() }()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = mapreduce.RunWorker(m.Addr())
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.ConnectedWorkers() < 2 {
		if time.Now().After(deadline) {
			return 0, nil, fmt.Errorf("dascbench: scale workers did not join")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	res, err := core.ClusterMapReduceSharded(dir, cfg, m)
	if err != nil {
		return 0, nil, err
	}
	wall := time.Since(start).Nanoseconds()
	if err := m.Close(); err != nil {
		return 0, nil, err
	}
	wg.Wait()
	return wall, res, nil
}

// sampledPairRecall samples `pairs` random point pairs and returns the
// fraction of same-category pairs the clustering also puts in one
// cluster — the sampled analogue of the ensemble sweep's pairRecall,
// cheap enough for million-point runs.
func sampledPairRecall(truth, pred []int, pairs int) float64 {
	if len(truth) < 2 || len(truth) != len(pred) {
		return 0
	}
	rng := rand.New(rand.NewSource(99))
	same, hit := 0, 0
	for p := 0; p < pairs; p++ {
		i := rng.Intn(len(truth))
		j := rng.Intn(len(truth))
		if i == j || truth[i] != truth[j] {
			continue
		}
		same++
		if pred[i] == pred[j] {
			hit++
		}
	}
	if same == 0 {
		return 0
	}
	return float64(hit) / float64(same)
}
