package main

// The embed-and-conquer wire benchmark: the shipped DASC driver run
// end-to-end over a real 2-worker TCP cluster, once with raw vectors in
// the stage-2 records and once with map-side embedded d′-dim records.
// Both entries store the measured shuffle bytes from the MapReduce
// counters, so the BENCH trail records the wire reduction (the embedded
// entry's gramfrac is its shuffle traffic as a fraction of the raw
// run's). The embedded run's labels are also checked bitwise against
// the in-process driver — the wire format must not cost determinism.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/spectral"
)

// benchEmbedWire appends the embed wire entries to the report.
func benchEmbedWire(add addFunc, quick bool) error {
	n := 2048
	if quick {
		n = 512
	}
	// High-dimensional input (d=64) against a narrow embedding (d′=8):
	// the regime where shipping features instead of coordinates pays.
	data, err := dataset.Mixture(dataset.MixtureConfig{N: n, D: 64, K: 8, Noise: 0.03, Seed: 21})
	if err != nil {
		return err
	}
	rawCfg := core.Config{K: 32, Seed: 5}
	embCfg := rawCfg
	embCfg.EmbedDim, embCfg.EmbedCutoff = 8, 32

	m, err := mapreduce.NewMasterTCP(mapreduce.TCPConfig{Addr: "127.0.0.1:0", MinWorkers: 2})
	if err != nil {
		return err
	}
	defer func() { _ = m.Close() }()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A clean master shutdown surfaces as a nil or EOF return.
			_ = mapreduce.RunWorker(m.Addr())
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.ConnectedWorkers() < 2 {
		if time.Now().After(deadline) {
			return fmt.Errorf("dascbench: embedwire workers did not join")
		}
		time.Sleep(time.Millisecond)
	}

	var rawRes, embRes *core.Result
	var runErr error
	rawEntry := add("embedwire/raw-tcp", 0, 0, func() {
		if rawRes, err = core.ClusterMapReduceShipped(data.Points, rawCfg, m); err != nil && runErr == nil {
			runErr = err
		}
	})
	embEntry := add("embedwire/embedded-tcp", 0, 0, func() {
		if embRes, err = core.ClusterMapReduceShipped(data.Points, embCfg, m); err != nil && runErr == nil {
			runErr = err
		}
	})
	if runErr != nil {
		return runErr
	}
	if err := m.Close(); err != nil {
		return err
	}
	wg.Wait()

	if embRes.Solvers[spectral.SolverEmbedded] == 0 {
		return fmt.Errorf("dascbench: embedwire never engaged the embedded solver: %v", embRes.Solvers)
	}
	rawEntry.ShuffleBytes = rawRes.MapReduce.ShuffleBytes
	embEntry.ShuffleBytes = embRes.MapReduce.ShuffleBytes
	embEntry.EmbedBytes = embRes.MapReduce.EmbedBytes
	embEntry.GramFrac = float64(embEntry.ShuffleBytes) / float64(rawEntry.ShuffleBytes)

	// Bitwise cross-driver identity on the embedded dial: the TCP
	// shipped run must reproduce the in-process driver exactly.
	local, err := core.Cluster(data.Points, embCfg)
	if err != nil {
		return err
	}
	for i := range local.Labels {
		if local.Labels[i] != embRes.Labels[i] {
			return fmt.Errorf("dascbench: embedwire label[%d] = %d over TCP, %d in-process",
				i, embRes.Labels[i], local.Labels[i])
		}
	}
	embEntry.Acc = 1 // labels bitwise-identical to the in-process driver

	fmt.Printf("embedwire shuffle: raw %d B, embedded %d B (%.2fx reduction, %d embed B)\n",
		rawEntry.ShuffleBytes, embEntry.ShuffleBytes,
		float64(rawEntry.ShuffleBytes)/float64(embEntry.ShuffleBytes), embEntry.EmbedBytes)
	return nil
}
