// Command dascbench is the repository's JSON benchmark harness: it
// times the hot paths of the DASC pipeline (blocked Gram engine,
// sub-Gram, median-sigma, the end-to-end clusterer and the SC
// baseline), of the per-bucket solve engine (dense vs thresholded-CSR
// sparse eigensolve on one bucket-sized problem)
// and of the MapReduce data plane (merge shuffle vs concat+sort, the
// binary frame codec, and a shuffle-heavy TCP job under the pipelined
// and lock-step wire configurations) with fixed iteration counts and
// stdlib timing, and writes the results
// to BENCH_<n>.json, where <n> is the next free index in the output
// directory. Unlike `go test -bench`, the output is machine-readable
// and append-only across runs, so successive PRs leave a comparable
// performance trail.
//
// Usage:
//
//	go run ./cmd/dascbench            # full run, writes BENCH_<n>.json
//	go run ./cmd/dascbench -quick     # CI smoke: fewer iterations
//	go run ./cmd/dascbench -iters 20  # explicit iteration count
//	go run ./cmd/dascbench -out dir   # output directory (default ".")
//	go run ./cmd/dascbench -note "…"  # free-form note stored in the file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/metrics"
)

// Result is one benchmark's record. Acc, GramFrac and Silhouette are
// only set for the entries where clustering quality, Gram compression,
// or labeling cohesion are meaningful (for the ensemble sweep, Acc is
// the same-cluster pair recall of the merged partition).
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Acc         float64 `json:"acc,omitempty"`
	GramFrac    float64 `json:"gramfrac,omitempty"`
	Silhouette  float64 `json:"silhouette,omitempty"`
	// ShuffleBytes / EmbedBytes are the measured MapReduce counters of
	// the embed wire benchmark (one run's shuffle traffic and map-side
	// embedded record bytes); zero elsewhere.
	ShuffleBytes int64 `json:"shuffle_bytes,omitempty"`
	EmbedBytes   int64 `json:"embed_bytes,omitempty"`
	// Out-of-core counters (spill benchmarks and -scale runs): bytes
	// spilled to sorted run files, shard bytes demand-read by workers,
	// and — for the EMR simulation — the modeled disk traffic.
	SpillBytes     int64 `json:"spill_bytes,omitempty"`
	ShardReadBytes int64 `json:"shard_read_bytes,omitempty"`
	DiskBytes      int64 `json:"disk_bytes,omitempty"`
	// Compressed-data-plane counters (wire/spill benchmarks and -scale
	// runs with Compression on): bytes the flate passes removed from
	// the shuffle and spill streams, the resulting compressed/raw size
	// ratio, and the wall time spent inside the codec.
	CompressedBytes int64   `json:"compressed_bytes,omitempty"`
	CompressRatio   float64 `json:"compress_ratio,omitempty"`
	CompressNanos   int64   `json:"compress_ns,omitempty"`
	// Shard read-coalescing counters: ReadAt calls issued against shard
	// files and how many of them served more than one row.
	ShardReadOps   int64 `json:"shard_read_ops,omitempty"`
	CoalescedReads int64 `json:"coalesced_reads,omitempty"`
	// N and PeakRSSBytes describe -scale runs: the dataset size, and
	// the process peak resident set (VmHWM) after the phase finished.
	// InMemoryBytes is the footprint the batch (all-in-RAM) pipeline
	// would need for the same phase, for comparison.
	N             int64 `json:"n,omitempty"`
	PeakRSSBytes  int64 `json:"peak_rss_bytes,omitempty"`
	InMemoryBytes int64 `json:"inmemory_bytes,omitempty"`
}

// Report is the BENCH_<n>.json document.
type Report struct {
	Note    string   `json:"note,omitempty"`
	Date    string   `json:"date"`
	Iters   int      `json:"iters"`
	Results []Result `json:"results"`
	// PeakRSSBytes is the process peak resident set at the end of the
	// whole run (VmHWM from /proc/self/status, or Go heap Sys where
	// unavailable).
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
}

// measure runs f iters times and returns wall time and heap
// allocations per op, both measured with the stdlib only.
func measure(iters int, f func()) (nsPerOp, allocsPerOp int64) {
	f() // warm-up: pools, caches, lazy init
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return elapsed.Nanoseconds() / n, int64(after.Mallocs-before.Mallocs) / n
}

// nextBenchPath returns <dir>/BENCH_<n>.json for the smallest n >= 1
// that does not exist yet.
func nextBenchPath(dir string) (string, error) {
	for n := 1; ; n++ {
		p := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(p); os.IsNotExist(err) {
			return p, nil
		} else if err != nil {
			return "", err
		}
	}
}

func run() error {
	quick := flag.Bool("quick", false, "CI smoke mode: fewer iterations")
	iters := flag.Int("iters", 0, "iterations per benchmark (0 = 10, or 2 with -quick)")
	out := flag.String("out", ".", "output directory for BENCH_<n>.json")
	note := flag.String("note", "", "free-form note stored in the report")
	scale := flag.Int("scale", 0, "out-of-core mode: corpus size N; replaces the micro suite")
	scaleDir := flag.String("scale-dir", "", "shard directory for -scale (default: a temp dir, removed afterwards)")
	spill := flag.Int64("spill", 32<<20, "spill budget in bytes for -scale runs")
	flag.Parse()

	it := *iters
	if it <= 0 {
		if *quick {
			it = 2
		} else {
			it = 10
		}
	}

	if *scale > 0 {
		rep := &Report{Note: *note, Date: time.Now().UTC().Format(time.RFC3339), Iters: 1}
		if err := benchScale(rep, *scale, *scaleDir, *spill); err != nil {
			return err
		}
		rep.PeakRSSBytes = peakRSS()
		return writeReport(rep, *out)
	}

	// The datasets mirror the root go-test benchmarks (bench_test.go) so
	// the two suites stay comparable: 512 x 64 for the Gram substrate,
	// the 1024 x 32 mixture for the end-to-end comparison.
	gramData, err := dataset.Mixture(dataset.MixtureConfig{N: 512, D: 64, K: 4, Seed: 3})
	if err != nil {
		return err
	}
	e2eData, err := dataset.Mixture(dataset.MixtureConfig{N: 1024, D: 32, K: 8, Noise: 0.03, Seed: 8})
	if err != nil {
		return err
	}

	rep := &Report{Note: *note, Date: time.Now().UTC().Format(time.RFC3339), Iters: it}
	add := func(name string, acc, gramfrac float64, f func()) *Result {
		ns, allocs := measure(it, f)
		rep.Results = append(rep.Results, Result{
			Name: name, NsPerOp: ns, AllocsPerOp: allocs, Acc: acc, GramFrac: gramfrac,
		})
		fmt.Printf("%-24s %12d ns/op %8d allocs/op\n", name, ns, allocs)
		return &rep.Results[len(rep.Results)-1]
	}

	fast := kernel.NewGaussian(1)
	generic := kernel.Func(fast.Eval) // same kernel, forced down the generic path
	add("gram/fast", 0, 0, func() { kernel.Gram(gramData.Points, fast) })
	add("gram/generic", 0, 0, func() { kernel.Gram(gramData.Points, generic) })

	// One mid-size bucket: every third row, the shape the per-bucket
	// solve stage feeds SubGram.
	indices := make([]int, 0, gramData.Points.Rows()/3)
	for i := 0; i < gramData.Points.Rows(); i += 3 {
		indices = append(indices, i)
	}
	add("subgram/fast", 0, 0, func() { kernel.SubGram(gramData.Points, indices, fast) })
	add("median-sigma", 0, 0, func() { kernel.MedianSigma(gramData.Points, 512, 7) })

	var dascRes *core.Result
	var dascErr error
	add("dasc/cluster", 0, 0, func() {
		dascRes, dascErr = core.Cluster(e2eData.Points, core.Config{K: 8, Seed: 1})
	})
	if dascErr != nil {
		return dascErr
	}
	acc, err := metrics.Accuracy(e2eData.Labels, dascRes.Labels)
	if err != nil {
		return err
	}
	n := e2eData.Points.Rows()
	last := &rep.Results[len(rep.Results)-1]
	last.Acc = acc
	last.GramFrac = float64(dascRes.GramBytes) / float64(kernel.GramBytes(n))

	if !*quick {
		var scRes *baseline.Result
		var scErr error
		add("sc/cluster", 0, 0, func() {
			scRes, scErr = baseline.SC(e2eData.Points, baseline.Config{K: 8, Seed: 1})
		})
		if scErr != nil {
			return scErr
		}
		scAcc, err := metrics.Accuracy(e2eData.Labels, scRes.Labels)
		if err != nil {
			return err
		}
		last := &rep.Results[len(rep.Results)-1]
		last.Acc = scAcc
		last.GramFrac = 1
	}

	if err := benchSolve(add, *quick); err != nil {
		return err
	}

	if err := benchDataPlane(add, *quick); err != nil {
		return err
	}

	if err := benchEmbedWire(add, *quick); err != nil {
		return err
	}

	if err := benchEnsemble(add, *quick); err != nil {
		return err
	}

	rep.PeakRSSBytes = peakRSS()
	return writeReport(rep, *out)
}

// writeReport marshals rep into the next free BENCH_<n>.json in dir.
func writeReport(rep *Report, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path, err := nextBenchPath(dir)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// peakRSS returns the process peak resident set in bytes: VmHWM from
// /proc/self/status where the kernel exposes it, else the Go runtime's
// OS-reserved heap as a floor.
func peakRSS() int64 {
	if data, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					return kb << 10
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dascbench:", err)
		os.Exit(1)
	}
}
