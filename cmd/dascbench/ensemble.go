package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/lsh"
	"repro/internal/metrics"
)

// benchEnsemble sweeps the multi-table, multi-probe bucketing dial at a
// fixed signature width: for every (L, R) cell it times the full
// hash+partition pass and records
//
//   - Acc: same-cluster pair recall of the merged partition — the
//     fraction of ground-truth same-cluster pairs that end up sharing a
//     merged bucket, the recall the ensemble dial exists to buy,
//   - Silhouette: cohesion of the end-to-end DASC labeling at that
//     dial.
//
// M is held small (8 bits over 1024 points) so the single-table
// partition visibly fragments clusters and the sweep has headroom to
// show recall climbing with L and R.
func benchEnsemble(add addFunc, quick bool) error {
	data, err := dataset.Mixture(dataset.MixtureConfig{N: 1024, D: 16, K: 8, Noise: 0.2, Seed: 15})
	if err != nil {
		return err
	}
	const m, seed = 14, 5
	tableSweep := []int{1, 2, 4, 8}
	probeSweep := []int{0, 1, 2}
	if quick {
		tableSweep = []int{1, 4}
		probeSweep = []int{0, 1}
	}
	// The merged-bucket cap (1.5x one true cluster) keeps the recall
	// levers honest: without it a few noisy tables union the whole
	// dataset into one bucket and every cell reads 1.0.
	maxBucket := data.Points.Rows() * 3 / 16
	for _, L := range tableSweep {
		for _, R := range probeSweep {
			ens, err := lsh.FitEnsemble(data.Points, lsh.Config{M: m, Seed: seed},
				lsh.EnsembleConfig{Tables: L, ProbeRadius: R, MaxMergedBucket: maxBucket})
			if err != nil {
				return err
			}
			var part *lsh.Partition
			r := add(fmt.Sprintf("ensemble/L%d-R%d", L, R), 0, 0, func() {
				part = ens.PartitionPoints(data.Points, 0)
			})
			r.Acc = pairRecall(data.Labels, part)

			res, err := core.Cluster(data.Points, core.Config{
				K: 8, M: m, Seed: seed, Tables: L, ProbeRadius: R,
				MaxMergedBucket: maxBucket,
			})
			if err != nil {
				return err
			}
			sil, err := metrics.Silhouette(data.Points, res.Labels)
			if err != nil {
				return err
			}
			r.Silhouette = sil
			fmt.Printf("%-24s pair-recall %.4f  silhouette %.4f  buckets %d\n",
				"", r.Acc, sil, len(part.Buckets))
		}
	}
	return nil
}

// pairRecall is the fraction of ground-truth same-cluster point pairs
// that share a merged bucket. It isolates what the recall dial buys:
// more tables and probes can only co-bucket more true pairs.
func pairRecall(truth []int, part *lsh.Partition) float64 {
	classes := 0
	for _, c := range truth {
		if c+1 > classes {
			classes = c + 1
		}
	}
	pairs := func(counts []int64) int64 {
		var p int64
		for _, c := range counts {
			p += c * (c - 1) / 2
		}
		return p
	}
	total := make([]int64, classes)
	for _, c := range truth {
		total[c]++
	}
	var hit int64
	perBucket := make([]int64, classes)
	for _, b := range part.Buckets {
		for i := range perBucket {
			perBucket[i] = 0
		}
		for _, idx := range b.Indices {
			perBucket[truth[idx]]++
		}
		hit += pairs(perBucket)
	}
	denom := pairs(total)
	if denom == 0 {
		return 0
	}
	return float64(hit) / float64(denom)
}
