// Command dasclint runs the DASC project's static-analysis suite
// (internal/lint) over the module: floatcmp, errcheck-gob,
// goroutine-guard, mutexcopy, panicfree, ctxarg, plus the determinism
// and concurrency analyzers maporder, floataccum, poolescape, and
// wgmisuse.
//
// Usage:
//
//	go run ./cmd/dasclint [-json] [-list] [-ignore-unused] [-workers N] [packages...]
//
// Package arguments are directory patterns relative to the current
// directory: "./..." (the default) lints the whole module, "./internal/lint"
// one package, "./internal/..." a subtree. Diagnostics print as
//
//	file:line:col: analyzer: message
//
// and the exit status is 0 when the tree is clean, 1 when findings were
// reported, and 2 when the module failed to load or type-check.
//
// Parsing and analysis fan out across GOMAXPROCS (override with
// -workers); diagnostics are globally sorted, so the output is
// byte-identical at any parallelism. -json emits a report object with
// the wall-clock split (load/analyze) alongside the findings, which CI
// archives for trend inspection.
//
// A finding can be suppressed on a specific line — with a mandatory
// reason — by a trailing or preceding comment:
//
//	//lint:ignore <analyzer> <reason>
//
// A directive that no longer suppresses anything is itself reported, so
// dead waivers cannot accumulate; pass -ignore-unused to silence that
// check (useful when running a subset of packages).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/lint"
)

// report is the -json output shape: the findings plus the run's timing
// and scope, so archived reports can be compared across commits.
type report struct {
	ElapsedMs   float64           `json:"elapsed_ms"`
	LoadMs      float64           `json:"load_ms"`
	AnalyzeMs   float64           `json:"analyze_ms"`
	Packages    int               `json:"packages"`
	Analyzers   int               `json:"analyzers"`
	Findings    []lint.Diagnostic `json:"findings"`
	NumFindings int               `json:"num_findings"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit a JSON report (timings + diagnostics)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	ignoreUnused := flag.Bool("ignore-unused", false, "do not report //lint:ignore directives that suppress nothing")
	workers := flag.Int("workers", 0, "parse/analyze parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	rep, err := run(flag.Args(), *workers, !*ignoreUnused)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dasclint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "dasclint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range rep.Findings {
			fmt.Println(d)
		}
	}
	if len(rep.Findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "dasclint: %d finding(s)\n", len(rep.Findings))
		}
		os.Exit(1)
	}
}

func run(patterns []string, workers int, reportUnused bool) (*report, error) {
	start := time.Now()
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.LoadAllParallel(workers)
	if err != nil {
		return nil, err
	}
	loaded := time.Now()
	diags := lint.RunWith(loader.Fset, pkgs, lint.All, lint.Options{
		Workers:             workers,
		ReportUnusedIgnores: reportUnused,
	})
	analyzed := time.Now()
	diags, err = filterByPatterns(diags, cwd, patterns)
	if err != nil {
		return nil, err
	}
	if diags == nil {
		diags = []lint.Diagnostic{}
	}
	return &report{
		ElapsedMs:   float64(analyzed.Sub(start).Microseconds()) / 1000,
		LoadMs:      float64(loaded.Sub(start).Microseconds()) / 1000,
		AnalyzeMs:   float64(analyzed.Sub(loaded).Microseconds()) / 1000,
		Packages:    len(pkgs),
		Analyzers:   len(lint.All),
		Findings:    diags,
		NumFindings: len(diags),
	}, nil
}

// filterByPatterns keeps diagnostics whose file falls under one of the
// requested directory patterns. No patterns (or "./...") means keep
// everything.
func filterByPatterns(diags []lint.Diagnostic, cwd string, patterns []string) ([]lint.Diagnostic, error) {
	if len(patterns) == 0 {
		return diags, nil
	}
	type rule struct {
		dir     string
		subtree bool
	}
	var rules []rule
	for _, p := range patterns {
		if p == "./..." || p == "..." {
			return diags, nil
		}
		subtree := false
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			p, subtree = rest, true
		}
		dir := p
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", p)
		}
		rules = append(rules, rule{dir: filepath.Clean(dir), subtree: subtree})
	}
	var out []lint.Diagnostic
	for _, d := range diags {
		fileDir := filepath.Dir(d.File)
		for _, r := range rules {
			if fileDir == r.dir || (r.subtree && strings.HasPrefix(fileDir, r.dir+string(filepath.Separator))) {
				out = append(out, d)
				break
			}
		}
	}
	return out, nil
}
