// Command dasclint runs the DASC project's static-analysis suite
// (internal/lint) over the module: floatcmp, errcheck-gob,
// goroutine-guard, mutexcopy, and panicfree.
//
// Usage:
//
//	go run ./cmd/dasclint [-json] [-list] [packages...]
//
// Package arguments are directory patterns relative to the current
// directory: "./..." (the default) lints the whole module, "./internal/lint"
// one package, "./internal/..." a subtree. Diagnostics print as
//
//	file:line:col: analyzer: message
//
// and the exit status is 0 when the tree is clean, 1 when findings were
// reported, and 2 when the module failed to load or type-check.
//
// A finding can be suppressed on a specific line — with a mandatory
// reason — by a trailing or preceding comment:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	diags, err := run(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dasclint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "dasclint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "dasclint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func run(patterns []string) ([]lint.Diagnostic, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, err
	}
	diags := lint.Run(loader.Fset, pkgs, lint.All)
	return filterByPatterns(diags, cwd, patterns)
}

// filterByPatterns keeps diagnostics whose file falls under one of the
// requested directory patterns. No patterns (or "./...") means keep
// everything.
func filterByPatterns(diags []lint.Diagnostic, cwd string, patterns []string) ([]lint.Diagnostic, error) {
	if len(patterns) == 0 {
		return diags, nil
	}
	type rule struct {
		dir     string
		subtree bool
	}
	var rules []rule
	for _, p := range patterns {
		if p == "./..." || p == "..." {
			return diags, nil
		}
		subtree := false
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			p, subtree = rest, true
		}
		dir := p
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", p)
		}
		rules = append(rules, rule{dir: filepath.Clean(dir), subtree: subtree})
	}
	var out []lint.Diagnostic
	for _, d := range diags {
		fileDir := filepath.Dir(d.File)
		for _, r := range rules {
			if fileDir == r.dir || (r.subtree && strings.HasPrefix(fileDir, r.dir+string(filepath.Separator))) {
				out = append(out, d)
				break
			}
		}
	}
	return out, nil
}
