// Command datagen emits the datasets of the paper's §5.2 as CSV on
// stdout (label,v0,v1,...): synthetic Gaussian mixtures in [0,1]^d, or
// the Wikipedia-stand-in corpus pushed through the full text pipeline
// (clean, stem, tf-idf, top-F terms).
//
// Usage:
//
//	datagen -kind synthetic -n 4096 -d 64 -k 16 > mix.csv
//	datagen -kind corpus -n 2048 -f 11 > wiki.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
	"repro/internal/dataset"
)

func main() {
	var (
		kind  = flag.String("kind", "synthetic", "dataset kind: synthetic | corpus")
		n     = flag.Int("n", 1024, "number of points / documents")
		d     = flag.Int("d", 64, "dimensions (synthetic)")
		k     = flag.Int("k", 0, "clusters / categories (0 = paper defaults)")
		noise = flag.Float64("noise", 0.05, "per-dimension noise (synthetic)")
		fTop  = flag.Int("f", 11, "top-F terms per document (corpus)")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var labeled *dataset.Labeled
	switch *kind {
	case "synthetic":
		kk := *k
		if kk == 0 {
			kk = 4
		}
		l, err := dataset.Mixture(dataset.MixtureConfig{
			N: *n, D: *d, K: kk, Noise: *noise, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		labeled = l
	case "corpus":
		c, err := corpus.Generate(corpus.Config{
			NumDocs: *n, NumCategories: *k, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		l, err := c.Vectorize(*fTop)
		if err != nil {
			fatal(err)
		}
		labeled = l
	default:
		fatal(fmt.Errorf("unknown -kind %q", *kind))
	}
	if err := labeled.WriteCSV(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
