// Command dasc clusters a CSV dataset (label,v0,v1,... — the datagen
// format; labels are used only for scoring) with DASC or one of the
// paper's baselines, and prints accuracy, quality metrics, memory and
// time.
//
// Usage:
//
//	datagen -kind corpus -n 2048 | dasc -algo dasc -k 34
//	dasc -algo sc -in mix.csv
//	dasc -algo dasc -mapreduce tcp -workers 4 -in mix.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/analytic"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
)

func main() {
	var (
		algo    = flag.String("algo", "dasc", "algorithm: dasc | sc | psc | nyst | km")
		in      = flag.String("in", "-", "input CSV path ('-' = stdin)")
		k       = flag.Int("k", 0, "clusters (0 = paper's category law)")
		m       = flag.Int("m", 0, "DASC signature bits (0 = paper default)")
		tune    = flag.Float64("tune", 0, "auto-tune M to keep this Fnorm ratio (overrides -m; e.g. 0.5)")
		sigma   = flag.Float64("sigma", 0, "kernel bandwidth (0 = median heuristic)")
		seed    = flag.Int64("seed", 1, "random seed")
		mr      = flag.String("mapreduce", "", "DASC driver: '' (in-process) | local | tcp | tcp-shipped")
		workers = flag.Int("workers", 2, "TCP MapReduce workers (tcp: goroutines; tcp-shipped: external dascworker processes to wait for)")
		listen  = flag.String("listen", "127.0.0.1:0", "master listen address for tcp-shipped")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the context, which aborts the run between
	// pipeline stages (and unblocks in-flight TCP task exchanges).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	input := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = f.Close() }() // input file, read-only
		input = f
	}
	l, err := dataset.ReadCSV(input)
	if err != nil {
		fatal(err)
	}
	n := l.Points.Rows()
	kk := *k
	if kk == 0 {
		kk = analytic.CategoryLaw(n)
	}
	fmt.Printf("dataset: %d points x %d dims, target clusters %d\n", n, l.Points.Cols(), kk)

	var (
		labels    []int
		gramBytes int64
		elapsed   time.Duration
	)
	switch *algo {
	case "dasc":
		if *tune > 0 {
			tuned, _, err := core.TuneM(l.Points, core.Config{Sigma: *sigma, Seed: *seed}, *tune, 0)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("tuned: M=%d keeps Fnorm ratio >= %.2f\n", tuned, *tune)
			*m = tuned
		}
		cfg := core.Config{K: kk, M: *m, Sigma: *sigma, Seed: *seed}
		var res *core.Result
		switch *mr {
		case "":
			res, err = core.ClusterContext(ctx, l.Points, cfg)
		case "local":
			res, err = core.ClusterMapReduceContext(ctx, l.Points, cfg, &mapreduce.Local{}, "cli")
		case "tcp":
			res, err = runOverTCP(ctx, l, cfg, *workers)
		case "tcp-shipped":
			res, err = runShipped(ctx, l, cfg, *listen, *workers)
		default:
			fatal(fmt.Errorf("unknown -mapreduce %q", *mr))
		}
		if err != nil {
			fatal(err)
		}
		labels, gramBytes, elapsed = res.Labels, res.GramBytes, res.Elapsed
		fmt.Printf("dasc: M=%d bits, %d buckets, %d clusters\n",
			res.SignatureBits, len(res.Buckets), res.Clusters)
	case "sc", "psc", "nyst", "km":
		cfg := baseline.Config{K: kk, Sigma: *sigma, Seed: *seed}
		var res *baseline.Result
		switch *algo {
		case "sc":
			res, err = baseline.SC(l.Points, cfg)
		case "psc":
			res, err = baseline.PSC(l.Points, cfg)
		case "nyst":
			res, err = baseline.NYST(l.Points, cfg)
		case "km":
			res, err = baseline.KM(l.Points, cfg)
		}
		if err != nil {
			fatal(err)
		}
		labels, gramBytes, elapsed = res.Labels, res.GramBytes, res.Elapsed
	default:
		fatal(fmt.Errorf("unknown -algo %q", *algo))
	}

	acc, err := metrics.Accuracy(l.Labels, labels)
	if err != nil {
		fatal(err)
	}
	dbi, err := metrics.DaviesBouldin(l.Points, labels)
	if err != nil {
		fatal(err)
	}
	ase, err := metrics.AverageSquaredError(l.Points, labels)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("accuracy: %.4f\nDBI:      %.4f\nASE:      %.5f\n", acc, dbi, ase)
	fmt.Printf("gram:     %.1f KB\ntime:     %s\n", float64(gramBytes)/1024, elapsed.Round(time.Millisecond))
}

// runOverTCP spins up an in-process TCP MapReduce cluster — master plus
// goroutine-hosted workers over real sockets — and runs DASC on it.
func runOverTCP(ctx context.Context, l *dataset.Labeled, cfg core.Config, workers int) (*core.Result, error) {
	master, err := mapreduce.NewMaster("127.0.0.1:0", workers)
	if err != nil {
		return nil, err
	}
	defer func() {
		if err := master.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "master close:", err)
		}
	}()
	for i := 0; i < workers; i++ {
		go func() {
			if err := mapreduce.RunWorkerContext(ctx, master.Addr()); err != nil {
				fmt.Fprintln(os.Stderr, "worker:", err)
			}
		}()
	}
	return core.ClusterMapReduceContext(ctx, l.Points, cfg, master, "cli-tcp")
}

// runShipped starts a master and waits for external dascworker
// processes before running the closure-free DASC jobs, so the workers
// can live on other machines (or at least other processes).
func runShipped(ctx context.Context, l *dataset.Labeled, cfg core.Config, listen string, workers int) (*core.Result, error) {
	master, err := mapreduce.NewMaster(listen, workers)
	if err != nil {
		return nil, err
	}
	defer func() {
		if err := master.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "master close:", err)
		}
	}()
	fmt.Printf("master listening on %s; start %d x `dascworker -master %s`\n",
		master.Addr(), workers, master.Addr())
	return core.ClusterMapReduceShippedContext(ctx, l.Points, cfg, master)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dasc:", err)
	os.Exit(1)
}
