// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                 # everything, full scale
//	experiments -quick          # everything, reduced sizes
//	experiments -only fig3      # one artifact: fig1,fig2,...,table3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "reduced dataset sizes (seconds, not minutes)")
		only  = flag.String("only", "", "comma-separated subset: fig1 fig2 fig3 fig4 fig5 fig6 table1 table2 table3 ablations locality")
	)
	flag.Parse()
	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	type artifact struct {
		id  string
		run func() (*experiments.Table, error)
	}
	artifacts := []artifact{
		{"fig1", func() (*experiments.Table, error) { return experiments.Figure1(), nil }},
		{"table1", func() (*experiments.Table, error) { return experiments.Table1(), nil }},
		{"fig2", func() (*experiments.Table, error) { return experiments.Figure2(), nil }},
		{"fig2measured", func() (*experiments.Table, error) { return experiments.Figure2Measured(scale) }},
		{"table2", func() (*experiments.Table, error) { return experiments.Table2(), nil }},
		{"fig3", func() (*experiments.Table, error) { return experiments.Figure3(scale) }},
		{"fig4", func() (*experiments.Table, error) { return experiments.Figure4(scale) }},
		{"fig5", func() (*experiments.Table, error) { return experiments.Figure5(scale) }},
		{"fig6", func() (*experiments.Table, error) { return experiments.Figure6(scale) }},
		{"table3", func() (*experiments.Table, error) { return experiments.Table3(scale) }},
		{"ablations", func() (*experiments.Table, error) { return experiments.Ablations(scale) }},
		{"locality", func() (*experiments.Table, error) { return experiments.Locality(scale) }},
	}
	// SIGINT/SIGTERM stop the sweep at the next artifact boundary, so a
	// long full-scale run can be abandoned without kill -9.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	for _, a := range artifacts {
		if !sel(a.id) {
			continue
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "experiments: interrupted")
			os.Exit(1)
		}
		tab, err := a.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", a.id, err)
			os.Exit(1)
		}
		tab.Fprint(os.Stdout)
	}
}
