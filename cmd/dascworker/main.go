// Command dascworker is a standalone MapReduce worker process: it dials
// the master, serves tasks until the master shuts down, and exits. The
// closure-free DASC jobs (ClusterMapReduceShipped and the sharded
// out-of-core jobs) are available to it through the factories
// registered by the core package, so a real multi-process deployment
// is:
//
//	terminal 1:  dasc -algo dasc -mapreduce tcp-shipped -in data.csv
//	terminal 2+: dascworker -master 127.0.0.1:<port>
//
// For sharded jobs (core.ClusterMapReduceSharded) the shard directory
// path inside the job conf must resolve on the worker's filesystem —
// a shared mount in a real deployment. Workers cache one open shard
// reader per directory for their lifetime; their demand-read bytes are
// local and do not appear in the master's ShardReadBytes counter.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/mapreduce"

	// Register the shipped DASC job factories in this process.
	_ "repro/internal/core"
)

func main() {
	master := flag.String("master", "", "master address host:port (required)")
	flag.Parse()
	if *master == "" {
		fmt.Fprintln(os.Stderr, "dascworker: -master is required")
		os.Exit(2)
	}
	// SIGINT/SIGTERM cancel the context, which unblocks the worker's
	// in-flight task exchange and makes it exit cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := mapreduce.RunWorkerContext(ctx, *master)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "dascworker: interrupted")
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dascworker:", err)
		os.Exit(1)
	}
}
