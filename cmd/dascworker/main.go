// Command dascworker is a standalone MapReduce worker process: it dials
// the master, serves tasks until the master shuts down, and exits. The
// closure-free DASC jobs (ClusterMapReduceShipped) are available to it
// through the factories registered by the core package, so a real
// multi-process deployment is:
//
//	terminal 1:  dasc -algo dasc -mapreduce tcp-shipped -in data.csv
//	terminal 2+: dascworker -master 127.0.0.1:<port>
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mapreduce"

	// Register the shipped DASC job factories in this process.
	_ "repro/internal/core"
)

func main() {
	master := flag.String("master", "", "master address host:port (required)")
	flag.Parse()
	if *master == "" {
		fmt.Fprintln(os.Stderr, "dascworker: -master is required")
		os.Exit(2)
	}
	if err := mapreduce.RunWorker(*master); err != nil {
		fmt.Fprintln(os.Stderr, "dascworker:", err)
		os.Exit(1)
	}
}
