package dasc_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/crawler"
	"repro/internal/dataset"
	"repro/internal/emr"
	"repro/internal/kernel"
	"repro/internal/kernelml"
	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/spectral"
	"repro/internal/text"
)

// The integration suite checks cross-module invariants that no single
// package test can see: all four DASC drivers agreeing, the crawl →
// pipeline → cluster chain preserving ground truth, and the consistency
// of the evaluation metrics across algorithms.

// TestAllDriversAgree runs the same configuration through the local,
// incremental, closure-MapReduce and shipped-MapReduce drivers and
// requires identical partitions.
func TestAllDriversAgree(t *testing.T) {
	l, err := dataset.Mixture(dataset.MixtureConfig{N: 220, D: 12, K: 4, Noise: 0.03, Seed: 60})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{K: 4, Seed: 61}
	ref, err := core.Cluster(l.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := core.ClusterIncremental(l.Points, cfg, ref.GramBytes/3+1)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := core.ClusterMapReduce(l.Points, cfg, &mapreduce.Local{}, "integration")
	if err != nil {
		t.Fatal(err)
	}
	shipped, err := core.ClusterMapReduceShipped(l.Points, cfg, &mapreduce.Local{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for name, labels := range map[string][]int{
		"incremental": inc.Labels,
		"mapreduce":   mr.Labels,
		"shipped":     shipped.Labels,
	} {
		agree, err := metrics.Accuracy(ref.Labels, labels)
		if err != nil {
			t.Fatal(err)
		}
		if agree != 1 {
			t.Fatalf("%s driver diverged: agreement %v", name, agree)
		}
	}
}

// TestCrawlPipelineClusterChain exercises site -> crawler -> text
// pipeline -> DASC -> metrics end to end over real HTTP.
func TestCrawlPipelineClusterChain(t *testing.T) {
	c, err := corpus.Generate(corpus.Config{NumDocs: 240, NumCategories: 4, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	site, err := crawler.NewSite(crawler.SiteConfig{Corpus: c, Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	base, stop := site.Start()
	defer stop()
	res, err := (&crawler.Crawler{}).Crawl(base, site.IndexPath)
	if err != nil {
		t.Fatal(err)
	}
	cleaned := make([][]string, len(res.Docs))
	for i, d := range res.Docs {
		cleaned[i] = text.Clean(d)
	}
	pts, _, err := text.VectorizeTopTerms(cleaned, 11)
	if err != nil {
		t.Fatal(err)
	}
	run, err := core.Cluster(pts, core.Config{K: 4, Seed: 64})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := metrics.Accuracy(res.Labels(), run.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("crawl chain accuracy = %v", acc)
	}
}

// TestMetricsConsistentAcrossAlgorithms: on an easy dataset every
// algorithm should reach the same partition, and then every agreement
// metric must report perfection for each of them.
func TestMetricsConsistentAcrossAlgorithms(t *testing.T) {
	l, err := dataset.Mixture(dataset.MixtureConfig{N: 150, D: 8, K: 3, Noise: 0.015, Seed: 65})
	if err != nil {
		t.Fatal(err)
	}
	runs := map[string][]int{}
	if r, err := core.Cluster(l.Points, core.Config{K: 3, Seed: 1}); err == nil {
		runs["dasc"] = r.Labels
	} else {
		t.Fatal(err)
	}
	if r, err := baseline.SC(l.Points, baseline.Config{K: 3, Seed: 1}); err == nil {
		runs["sc"] = r.Labels
	} else {
		t.Fatal(err)
	}
	if r, err := baseline.PSC(l.Points, baseline.Config{K: 3, Seed: 1}); err == nil {
		runs["psc"] = r.Labels
	} else {
		t.Fatal(err)
	}
	gram := kernel.Gram(l.Points, kernel.Gaussian(0.5))
	if r, err := kernelml.KernelKMeans(gram, kernelml.KernelKMeansConfig{K: 3, Seed: 1}); err == nil {
		runs["kkmeans"] = r.Labels
	} else {
		t.Fatal(err)
	}
	for name, labels := range runs {
		acc, err1 := metrics.Accuracy(l.Labels, labels)
		nmi, err2 := metrics.NMI(l.Labels, labels)
		ari, err3 := metrics.AdjustedRand(l.Labels, labels)
		pur, err4 := metrics.Purity(l.Labels, labels)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			t.Fatalf("%s: metric errors", name)
		}
		if acc != 1 || nmi < 0.999 || ari < 0.999 || pur != 1 {
			t.Fatalf("%s: acc=%v nmi=%v ari=%v purity=%v", name, acc, nmi, ari, pur)
		}
	}
}

// TestEMRFlowMatchesRealWork: the simulated flow's Gram memory must
// equal the real run's accounting for the same configuration.
func TestEMRFlowMatchesRealWork(t *testing.T) {
	l, err := dataset.Mixture(dataset.MixtureConfig{N: 512, D: 16, K: 8, Noise: 0.04, Seed: 66})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{K: 8, Seed: 67}
	run, err := core.Cluster(l.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	flow, part, err := core.EMRFlow(l.Points, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if part.NumBuckets() != len(run.Buckets) {
		t.Fatalf("flow buckets %d vs run buckets %d", part.NumBuckets(), len(run.Buckets))
	}
	cluster, err := emr.NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cluster.RunJobFlow(flow)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps[1].Schedule.TotalMemory != run.GramBytes {
		t.Fatalf("simulated gram %d vs real %d",
			rep.Steps[1].Schedule.TotalMemory, run.GramBytes)
	}
}

// TestFamilySwapKeepsCoverage: any LSH family must still produce a
// disjoint cover of the dataset through the core driver.
func TestFamilySwapKeepsCoverage(t *testing.T) {
	l, err := dataset.Mixture(dataset.MixtureConfig{N: 130, D: 10, K: 3, Noise: 0.05, Seed: 68})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := lsh.FitSimHash(l.Points, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Cluster(l.Points, core.Config{K: 3, Seed: 69, Family: sim})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range res.Buckets {
		total += b.Size
	}
	if total != 130 {
		t.Fatalf("buckets cover %d of 130 points", total)
	}
}

// TestSparseDenseSpectralAgreement: dense and sparse spectral paths
// must agree on a clean two-cluster problem.
func TestSparseDenseSpectralAgreement(t *testing.T) {
	l, err := dataset.Mixture(dataset.MixtureConfig{N: 100, D: 6, K: 2, Noise: 0.02, Seed: 70})
	if err != nil {
		t.Fatal(err)
	}
	s := kernel.Gram(l.Points, kernel.Gaussian(0.5))
	dense, err := spectral.Cluster(s, spectral.Config{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// PSC uses the sparse path end to end.
	sp, err := baseline.PSC(l.Points, baseline.Config{K: 2, Seed: 3, Neighbors: 30})
	if err != nil {
		t.Fatal(err)
	}
	agree, err := metrics.Accuracy(dense.Labels, sp.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if agree != 1 {
		t.Fatalf("dense/sparse spectral disagree: %v", agree)
	}
}
