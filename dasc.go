// Package dasc is the public API of the DASC library — Distributed
// Approximate Spectral Clustering (Gao, Abd-Almageed, Hefeeda, HPDC'12)
// reimplemented in pure Go.
//
// The package re-exports the stable surface of the internal subsystem
// packages: the DASC clusterer and its drivers, the three baselines the
// paper compares against, dataset generators, the evaluation metrics,
// and the MapReduce/EMR runtimes. See README.md for a tour and
// DESIGN.md for the architecture.
//
// Minimal use:
//
//	data, _ := dasc.Mixture(dasc.MixtureConfig{N: 2000, D: 16, K: 5})
//	res, _ := dasc.Cluster(data.Points, dasc.Config{K: 5})
//	acc, _ := dasc.Accuracy(data.Labels, res.Labels)
package dasc

import (
	"context"
	"errors"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/emr"
	"repro/internal/kernel"
	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/spectral"
)

// ---- core types ----

// Matrix is a dense row-major matrix of float64 values.
type Matrix = matrix.Dense

// NewMatrix allocates a rows x cols zero matrix.
func NewMatrix(rows, cols int) *Matrix { return matrix.NewDense(rows, cols) }

// FromRows builds a matrix by copying the given rows.
func FromRows(rows [][]float64) (*Matrix, error) { return matrix.FromRows(rows) }

// Config controls a DASC run; zero values select the paper's defaults
// (K from the category law, M = ceil(log2 N / 2) - 1, P = M-1 merging,
// median-heuristic kernel bandwidth).
type Config = core.Config

// Result reports a DASC run: labels, bucket structure, Gram memory.
type Result = core.Result

// IncrementalResult extends Result with bounded-memory accounting.
type IncrementalResult = core.IncrementalResult

// Cluster runs DASC in-process with a parallel bucket pool.
func Cluster(points *Matrix, cfg Config) (*Result, error) {
	return core.Cluster(points, cfg)
}

// ClusterContext is Cluster with cancellation: the run aborts between
// pipeline stages and before each bucket solve once ctx is done.
func ClusterContext(ctx context.Context, points *Matrix, cfg Config) (*Result, error) {
	return core.ClusterContext(ctx, points, cfg)
}

// ClusterMapReduce runs DASC as the paper's two MapReduce stages on any
// executor (LocalExecutor, or a TCP Master with connected workers).
func ClusterMapReduce(points *Matrix, cfg Config, exec Executor, jobPrefix string) (*Result, error) {
	return core.ClusterMapReduce(points, cfg, exec, jobPrefix)
}

// ClusterMapReduceContext is ClusterMapReduce with cancellation,
// threaded into the executor's in-flight map and reduce tasks.
func ClusterMapReduceContext(ctx context.Context, points *Matrix, cfg Config, exec Executor, jobPrefix string) (*Result, error) {
	return core.ClusterMapReduceContext(ctx, points, cfg, exec, jobPrefix)
}

// ClusterMapReduceShipped runs the closure-free MapReduce formulation:
// all data travels through the records, so the executor's workers may
// live in other OS processes (see cmd/dascworker).
func ClusterMapReduceShipped(points *Matrix, cfg Config, exec Executor) (*Result, error) {
	return core.ClusterMapReduceShipped(points, cfg, exec)
}

// ClusterMapReduceShippedContext is ClusterMapReduceShipped with
// cancellation.
func ClusterMapReduceShippedContext(ctx context.Context, points *Matrix, cfg Config, exec Executor) (*Result, error) {
	return core.ClusterMapReduceShippedContext(ctx, points, cfg, exec)
}

// ClusterMapReduceSharded runs the out-of-core MapReduce formulation
// against a shard directory (see WriteShards): the input matrix never
// materializes in driver memory — stage-1 mappers stream shard row
// ranges and stage-2 reducers demand-read only the rows their buckets
// reference. Combine with Config.SpillBytes to bound the shuffle too.
func ClusterMapReduceSharded(dir string, cfg Config, exec Executor) (*Result, error) {
	return core.ClusterMapReduceSharded(dir, cfg, exec)
}

// ClusterMapReduceShardedContext is ClusterMapReduceSharded with
// cancellation.
func ClusterMapReduceShardedContext(ctx context.Context, dir string, cfg Config, exec Executor) (*Result, error) {
	return core.ClusterMapReduceShardedContext(ctx, dir, cfg, exec)
}

// ClusterIncremental runs DASC with the resident Gram storage bounded
// by budgetBytes, processing buckets in waves.
func ClusterIncremental(points *Matrix, cfg Config, budgetBytes int64) (*IncrementalResult, error) {
	return core.ClusterIncremental(points, cfg, budgetBytes)
}

// ClusterIncrementalContext is ClusterIncremental with cancellation.
func ClusterIncrementalContext(ctx context.Context, points *Matrix, cfg Config, budgetBytes int64) (*IncrementalResult, error) {
	return core.ClusterIncrementalContext(ctx, points, cfg, budgetBytes)
}

// TuneM sweeps the signature width and returns the largest M whose
// approximated Gram matrix keeps at least minFnormRatio of the full
// matrix's Frobenius norm (the paper's §5.5 accuracy/parallelism knob,
// measured as in its Figure 5).
func TuneM(points *Matrix, cfg Config, minFnormRatio float64) (int, error) {
	m, _, err := core.TuneM(points, cfg, minFnormRatio, 0)
	return m, err
}

// ---- baselines (§5.4) ----

// BaselineConfig is shared by the SC, PSC and NYST baselines.
type BaselineConfig = baseline.Config

// BaselineResult reports a baseline run.
type BaselineResult = baseline.Result

// SC is plain spectral clustering on the full Gram matrix.
func SC(points *Matrix, cfg BaselineConfig) (*BaselineResult, error) {
	return baseline.SC(points, cfg)
}

// PSC is parallel spectral clustering on a t-nearest-neighbour sparse
// similarity graph (Chen et al.).
func PSC(points *Matrix, cfg BaselineConfig) (*BaselineResult, error) {
	return baseline.PSC(points, cfg)
}

// NYST is spectral clustering with the Nystrom extension (Shi et al.).
func NYST(points *Matrix, cfg BaselineConfig) (*BaselineResult, error) {
	return baseline.NYST(points, cfg)
}

// KM is plain K-means on the raw vectors — the Gram-free baseline.
func KM(points *Matrix, cfg BaselineConfig) (*BaselineResult, error) {
	return baseline.KM(points, cfg)
}

// SpectralCluster runs plain Ng–Jordan–Weiss spectral clustering on a
// precomputed similarity matrix.
func SpectralCluster(similarity *Matrix, k int, seed int64) ([]int, error) {
	res, err := spectral.Cluster(similarity, spectral.Config{K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	return res.Labels, nil
}

// ---- kernels ----

// Kernel is a positive-semidefinite similarity function. A plain
// closure of type kernel.Func satisfies it; kernels built with Gaussian
// (and kernel.NewCosine) are additionally recognized by the blocked
// Gram engine and computed several times faster.
type Kernel = kernel.Kernel

// KernelFunc adapts a plain similarity closure into a Kernel. Closure
// kernels always take the engine's generic per-pair path.
func KernelFunc(f func(x, y []float64) float64) Kernel { return kernel.Func(f) }

// Gaussian returns the RBF kernel of Eq. 1, in the recognized form the
// blocked Gram engine computes on its fast path.
func Gaussian(sigma float64) Kernel { return kernel.NewGaussian(sigma) }

// Gram computes the full zero-diagonal similarity matrix.
func Gram(points *Matrix, k Kernel) *Matrix { return kernel.Gram(points, k) }

// ---- kernel embeddings ----

// Embedder is a deterministic kernel feature map: TransformInto fills
// d′-dimensional embedded rows whose dot products approximate the
// kernel, so eigensolves become dot products (the embed-and-conquer
// solve path). Enable it inside a DASC run with Config.EmbedDim and
// Config.EmbedCutoff; the standalone constructors below serve callers
// who want the features themselves.
type Embedder = embed.Embedder

// NewRFFEmbedder fits a seed-derived random Fourier feature map for the
// Gaussian kernel of bandwidth sigma. dim must be even — the features
// come in cos/sin pairs.
func NewRFFEmbedder(inputDim, dim int, sigma float64, seed int64) (Embedder, error) {
	return embed.NewRFF(inputDim, dim, sigma, seed)
}

// NewNystromEmbedder fits a Nyström feature map from `samples` landmark
// rows of points, with dim <= samples output dimensions.
func NewNystromEmbedder(points *Matrix, samples, dim int, sigma float64, seed int64) (Embedder, error) {
	return embed.NewNystrom(points, samples, dim, sigma, seed)
}

// ---- LSH ----

// LSHFamily is a locality-sensitive hashing scheme; see the lsh
// subpackage for SimHash, MinHash, p-stable and spectral hashing.
type LSHFamily = lsh.Family

// FitLSH builds the paper's span/threshold hasher for the dataset.
func FitLSH(points *Matrix, m int, seed int64) (LSHFamily, error) {
	return lsh.Fit(points, lsh.Config{M: m, Seed: seed})
}

// MinHashLSH draws an m-bit min-wise hashing family over each vector's
// nonzero support — the natural family for sparse shingled or tf-idf
// text vectors, where set overlap (Jaccard) is the right similarity.
// Pass it as Config.Family; because MinHash is seed-refittable, setting
// Config.Tables > 1 grows independent ensemble tables from it, and
// Config.ProbeRadius adds Hamming-ball probing (see examples/shingles).
func MinHashLSH(m int, seed int64) (LSHFamily, error) {
	return lsh.FitMinHash(m, seed)
}

// ---- datasets ----

// Labeled couples points with ground-truth labels.
type Labeled = dataset.Labeled

// MixtureConfig controls the synthetic Gaussian-mixture generator.
type MixtureConfig = dataset.MixtureConfig

// Mixture draws a synthetic mixture in [0,1]^D (§5.2).
func Mixture(cfg MixtureConfig) (*Labeled, error) { return dataset.Mixture(cfg) }

// CorpusConfig controls the Wikipedia-stand-in document generator.
type CorpusConfig = corpus.Config

// Corpus is a generated document collection with category labels.
type Corpus = corpus.Corpus

// GenerateCorpus builds a category-structured HTML document corpus.
func GenerateCorpus(cfg CorpusConfig) (*Corpus, error) { return corpus.Generate(cfg) }

// ---- sharded input ----

// ShardWriter streams rows into a shard directory without holding the
// matrix in memory; see internal/shard for the file format.
type ShardWriter = shard.Writer

// ShardReader exposes a shard directory as a random-access row matrix.
type ShardReader = shard.Reader

// NewShardWriter opens a shard writer for rows of cols values, cutting
// a new file every rowsPerShard rows (0 uses the package default).
func NewShardWriter(dir string, cols, rowsPerShard int) (*ShardWriter, error) {
	return shard.NewWriter(dir, cols, rowsPerShard)
}

// OpenShards opens a shard directory for reading.
func OpenShards(dir string) (*ShardReader, error) { return shard.Open(dir) }

// WriteShards splits an in-memory matrix into row-range shard files
// under dir, for feeding ClusterMapReduceSharded.
func WriteShards(dir string, points *Matrix, rowsPerShard int) error {
	w, err := shard.NewWriter(dir, points.Cols(), rowsPerShard)
	if err != nil {
		return err
	}
	for i := 0; i < points.Rows(); i++ {
		if err := w.Append(points.Row(i)); err != nil {
			return errors.Join(err, w.Close())
		}
	}
	return w.Close()
}

// ---- metrics (§5.3) ----

// Accuracy is the fraction of correctly clustered points under the best
// cluster-to-class assignment.
func Accuracy(truth, pred []int) (float64, error) { return metrics.Accuracy(truth, pred) }

// DaviesBouldin computes the DBI of Eq. 20 (lower is better).
func DaviesBouldin(points *Matrix, labels []int) (float64, error) {
	return metrics.DaviesBouldin(points, labels)
}

// AverageSquaredError computes the ASE of Eq. 21 (lower is better).
func AverageSquaredError(points *Matrix, labels []int) (float64, error) {
	return metrics.AverageSquaredError(points, labels)
}

// NMI is normalized mutual information between two labelings.
func NMI(truth, pred []int) (float64, error) { return metrics.NMI(truth, pred) }

// Purity is the majority-class fraction per cluster.
func Purity(truth, pred []int) (float64, error) { return metrics.Purity(truth, pred) }

// AdjustedRand is the chance-corrected Rand index.
func AdjustedRand(truth, pred []int) (float64, error) { return metrics.AdjustedRand(truth, pred) }

// Silhouette is the mean silhouette coefficient of a labeling.
func Silhouette(points *Matrix, labels []int) (float64, error) {
	return metrics.Silhouette(points, labels)
}

// ---- distributed runtimes ----

// Executor runs MapReduce jobs.
type Executor = mapreduce.Executor

// LocalExecutor is the in-process bounded worker pool.
type LocalExecutor = mapreduce.Local

// Master coordinates TCP MapReduce workers.
type Master = mapreduce.Master

// TCPConfig configures a TCP master: listen address, worker quorum, and
// the dial / per-task-exchange deadlines (zero values use the package
// defaults).
type TCPConfig = mapreduce.TCPConfig

// NewMaster starts a TCP MapReduce master on addr that waits for
// minWorkers workers, with default deadlines.
func NewMaster(addr string, minWorkers int) (*Master, error) {
	return mapreduce.NewMaster(addr, minWorkers)
}

// NewMasterTCP starts a TCP MapReduce master from an explicit
// configuration, including tuned deadlines.
func NewMasterTCP(cfg TCPConfig) (*Master, error) {
	return mapreduce.NewMasterTCP(cfg)
}

// RunWorker connects to a master and serves tasks until it closes.
func RunWorker(addr string) error { return mapreduce.RunWorker(addr) }

// RunWorkerContext is RunWorker with cancellation: a done context
// unblocks the worker even while it waits for the next task.
func RunWorkerContext(ctx context.Context, addr string) error {
	return mapreduce.RunWorkerContext(ctx, addr)
}

// EMRCluster is the simulated elastic cluster (Table 2 nodes).
type EMRCluster = emr.Cluster

// NewEMRCluster builds an n-node simulated cluster.
func NewEMRCluster(n int) (*EMRCluster, error) { return emr.NewCluster(n) }

// EMRFlow builds the DASC job flow for a dataset so it can be scheduled
// on simulated clusters of different sizes (Table 3).
func EMRFlow(points *Matrix, cfg Config, beta float64) (*emr.JobFlow, error) {
	flow, _, err := core.EMRFlow(points, cfg, beta)
	return flow, err
}
