package dasc_test

import (
	"fmt"

	dasc "repro"
)

// Example demonstrates the smallest end-to-end DASC run: generate a
// mixture, cluster it with the paper's defaults, score against ground
// truth.
func Example() {
	data, err := dasc.Mixture(dasc.MixtureConfig{N: 400, D: 8, K: 4, Noise: 0.02, Seed: 42})
	if err != nil {
		panic(err)
	}
	res, err := dasc.Cluster(data.Points, dasc.Config{K: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	acc, err := dasc.Accuracy(data.Labels, res.Labels)
	if err != nil {
		panic(err)
	}
	fmt.Printf("clusters=%d accuracy>=0.95: %v\n", res.Clusters, acc >= 0.95)
	// Output: clusters=4 accuracy>=0.95: true
}

// ExampleCluster_memorySavings shows the approximated Gram matrix
// staying below the full N^2 cost — the paper's headline property.
func ExampleCluster_memorySavings() {
	data, err := dasc.Mixture(dasc.MixtureConfig{N: 1000, D: 16, K: 8, Noise: 0.03, Seed: 7})
	if err != nil {
		panic(err)
	}
	res, err := dasc.Cluster(data.Points, dasc.Config{K: 8, Seed: 1})
	if err != nil {
		panic(err)
	}
	full := int64(4) * 1000 * 1000
	fmt.Printf("approximated gram below full: %v\n", res.GramBytes < full)
	// Output: approximated gram below full: true
}

// ExampleSpectralCluster runs plain spectral clustering on a
// user-provided similarity matrix.
func ExampleSpectralCluster() {
	// Two obvious groups: {0,1} similar, {2,3} similar.
	s, err := dasc.FromRows([][]float64{
		{0, 0.9, 0.1, 0.1},
		{0.9, 0, 0.1, 0.1},
		{0.1, 0.1, 0, 0.9},
		{0.1, 0.1, 0.9, 0},
	})
	if err != nil {
		panic(err)
	}
	labels, err := dasc.SpectralCluster(s, 2, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("pairs grouped: %v %v\n", labels[0] == labels[1], labels[2] == labels[3])
	// Output: pairs grouped: true true
}

// ExampleGenerateCorpus walks the document pipeline: synthesize a
// category-structured corpus and vectorize it with the paper's F=11
// top-term representation.
func ExampleGenerateCorpus() {
	c, err := dasc.GenerateCorpus(dasc.CorpusConfig{NumDocs: 100, NumCategories: 4, Seed: 3})
	if err != nil {
		panic(err)
	}
	data, err := c.Vectorize(11)
	if err != nil {
		panic(err)
	}
	fmt.Printf("docs=%d categories=%d labeled=%v\n",
		data.Points.Rows(), c.Categories, len(data.Labels) == 100)
	// Output: docs=100 categories=4 labeled=true
}
